//! The content-addressed result cache behind the run engine.
//!
//! Every grid cell the harness can simulate — (workload(s), scheme, L1D
//! prefetcher, bandwidth, run budget) — maps to a [`RunKey`]: a stable
//! 128-bit content hash of the cell's canonical description salted with
//! [`CODE_VERSION`]. The cache has two tiers:
//!
//! * **memory** — a process-wide map shared by every experiment of one
//!   invocation, so `tlp_repro --all` simulates each unique cell once no
//!   matter how many figures request it;
//! * **disk** — optional (`--cache-dir`), one JSON file per key in the
//!   [`tlp_sim::serial`] format, so repeated invocations are
//!   simulation-free. Safe for concurrent writers across threads and
//!   processes (uniquely named temp files + atomic rename, lock-free
//!   readers), with an optional size cap enforced by an LRU sweep.
//!
//! On top of the tiers sits a **single-flight layer**
//! ([`ResultCache::get_or_run`]): the first requester of a missing cell
//! becomes its *leader* and simulates; every concurrent requester of the
//! same [`RunKey`] — another batch, another thread, another `tlp-serve`
//! client — blocks on the in-flight slot and receives the leader's
//! published report. One simulation per unique cell, ever, no matter how
//! the traffic overlaps.
//!
//! Cell results are deterministic functions of their description (the
//! simulator is single-threaded per cell and all seeds are fixed), which
//! is what makes content addressing sound; `tests/determinism.rs` pins
//! that property across thread counts and cache states.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use parking_lot::RwLock;

use tlp_obs::{Counter, Histogram, MetricsRegistry};
use tlp_sim::{serial, SimReport, Timeline};

/// Salt folded into every [`RunKey`]. Bump this whenever a change to the
/// simulator or workload generation alters results, so stale on-disk cache
/// entries can never be served for the new code.
pub const CODE_VERSION: &str = "tlp-cells-v1";

/// Content hash identifying one simulation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(u128);

/// FNV-1a over `bytes`, starting from `seed`.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RunKey {
    /// Hashes a canonical cell description (two independent 64-bit FNV-1a
    /// streams — the grid is thousands of cells, far below the ~2⁶⁴
    /// birthday bound of a 128-bit key). The [`CODE_VERSION`] salt is
    /// folded into both halves.
    #[must_use]
    pub fn from_desc(desc: &str) -> Self {
        let lo = fnv1a(
            fnv1a(0xcbf2_9ce4_8422_2325, CODE_VERSION.as_bytes()),
            desc.as_bytes(),
        );
        let hi = fnv1a(
            fnv1a(0x6c62_272e_07bb_0142, CODE_VERSION.as_bytes()),
            desc.as_bytes(),
        );
        Self((u128::from(hi) << 64) | u128::from(lo))
    }

    /// The key as 32 hex digits (the on-disk file stem).
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Canonical fragment for an optional per-core bandwidth: exact `f64` bits
/// so distinct sweep points can never alias.
#[must_use]
pub fn bandwidth_desc(gbps: Option<f64>) -> String {
    match gbps {
        None => "bw:default".to_owned(),
        Some(b) => format!("bw:{:016x}", b.to_bits()),
    }
}

/// Canonical description of a single-core cell. `env` is the harness's
/// run-budget fragment (scale, warmup, instructions).
#[must_use]
pub fn single_desc(env: &str, workload: &str, scheme_key: &str, l1pf: &str, bw: &str) -> String {
    format!("1c|{env}|{workload}|{scheme_key}|{l1pf}|{bw}")
}

/// Canonical description of a 4-core mix cell.
#[must_use]
pub fn mix_desc(env: &str, workloads: [&str; 4], scheme_key: &str, l1pf: &str, bw: &str) -> String {
    format!(
        "4c|{env}|{}+{}+{}+{}|{scheme_key}|{l1pf}|{bw}",
        workloads[0], workloads[1], workloads[2], workloads[3]
    )
}

/// Canonical description of a single-core cell under a custom
/// [`tlp_sim::SystemConfig`]; `tag` must uniquely identify the deviation.
#[must_use]
pub fn custom_desc(env: &str, workload: &str, scheme_key: &str, l1pf: &str, tag: &str) -> String {
    format!("1c|{env}|{workload}|{scheme_key}|{l1pf}|cfg:{tag}")
}

/// What [`DiskCache::load_classified`] found for a key.
#[derive(Debug)]
pub enum DiskLoad {
    /// A well-formed entry.
    Hit(SimReport),
    /// No entry on disk.
    Miss,
    /// An entry existed but did not decode; it has been deleted so the
    /// next store rewrites it instead of leaving the corruption in place.
    Corrupt,
}

/// Per-writer sequence folded into every temp-file name. The pid alone is
/// not collision-free: two threads of one process storing the same key
/// would truncate and interleave writes into a single temp file and could
/// rename a torn entry over the real one.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// How many stores happen between automatic size-cap sweeps.
const SWEEP_EVERY: u64 = 32;

/// The on-disk tier: one `<key>.json` per cell under a cache directory,
/// safe for concurrent writers across threads *and* processes (every
/// entry is published by an atomic rename of a uniquely named temp file;
/// readers never take a lock).
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    cap_bytes: Option<u64>,
    stores: AtomicU64,
    /// Starts detached; adopted into the owning [`ResultCache`]'s
    /// metrics registry as `run_cache_evicted_total`.
    evicted: Counter,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            cap_bytes: None,
            stores: AtomicU64::new(0),
            evicted: Counter::detached(),
        })
    }

    /// Caps the directory at `cap` bytes of entries: every
    /// [`SWEEP_EVERY`]-th store runs an LRU [`sweep`](DiskCache::sweep)
    /// that deletes oldest-modified entries until the total fits.
    #[must_use]
    pub fn with_cap_bytes(mut self, cap: u64) -> Self {
        self.cap_bytes = Some(cap);
        self
    }

    /// The directory backing this cache.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured size cap, if any.
    #[must_use]
    pub fn cap_bytes(&self) -> Option<u64> {
        self.cap_bytes
    }

    /// Entries deleted by size-cap sweeps so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted.get()
    }

    fn path_for(&self, key: RunKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads one report, distinguishing an absent entry from a corrupt
    /// one. A corrupt entry (torn write from a crashed process, bit rot,
    /// an incompatible format) is deleted on sight — before this, it sat
    /// on disk masquerading as a valid entry until some store happened to
    /// overwrite it — and the deletion is counted so operators can see
    /// cache corruption in the engine stats.
    #[must_use]
    pub fn load_classified(&self, key: RunKey) -> DiskLoad {
        let path = self.path_for(key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return DiskLoad::Miss;
        };
        match serial::report_from_json(&text) {
            Ok(report) => DiskLoad::Hit(report),
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                DiskLoad::Corrupt
            }
        }
    }

    /// Loads one report, or `None` when absent or undecodable (a corrupt
    /// entry is deleted and behaves like a miss).
    #[must_use]
    pub fn load(&self, key: RunKey) -> Option<SimReport> {
        match self.load_classified(key) {
            DiskLoad::Hit(report) => Some(report),
            DiskLoad::Miss | DiskLoad::Corrupt => None,
        }
    }

    /// Stores one report (atomically: uniquely named temp file + rename,
    /// so concurrent writers — same process or not — never publish a torn
    /// entry). Best-effort — a full disk degrades to cache misses, not
    /// failures.
    pub fn store(&self, key: RunKey, report: &SimReport) {
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(serial::report_to_json(report).as_bytes())?;
            std::fs::rename(&tmp, self.path_for(key))
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        if self.cap_bytes.is_some()
            && self.stores.fetch_add(1, Ordering::Relaxed) % SWEEP_EVERY == SWEEP_EVERY - 1
        {
            self.sweep();
        }
    }

    /// Path of a timeline blob. Timeline artifacts live *next to* report
    /// entries under a distinct `<key>.timeline.json` name: they must
    /// never be probed by [`DiskCache::load_classified`], whose
    /// corruption check (and delete-on-sight) validates the report
    /// format. The `.json` suffix keeps them visible to the size-cap
    /// sweep, so a capped cache bounds blobs too.
    fn timeline_path_for(&self, key: RunKey) -> PathBuf {
        self.dir.join(format!("{}.timeline.json", key.hex()))
    }

    /// Loads one timeline blob; a corrupt blob is deleted and reads as a
    /// miss (it will simply be re-captured).
    #[must_use]
    pub fn load_timeline(&self, key: RunKey) -> Option<Timeline> {
        let path = self.timeline_path_for(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match serial::timeline_from_json(&text) {
            Ok(t) => Some(t),
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores one timeline blob (same atomic temp-file + rename protocol
    /// as [`DiskCache::store`]).
    pub fn store_timeline(&self, key: RunKey, timeline: &Timeline) {
        let tmp = self.dir.join(format!(
            "{}.timeline.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(serial::timeline_to_json(timeline).as_bytes())?;
            std::fs::rename(&tmp, self.timeline_path_for(key))
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Size-cap enforcement: while the entries exceed the cap, delete the
    /// least-recently-modified ones. Concurrent sweeps from several
    /// processes are safe (a file deleted twice is deleted once); a
    /// deleted entry costs a re-simulation, never a wrong result.
    pub fn sweep(&self) {
        let Some(cap) = self.cap_bytes else { return };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, meta.len(), e.path()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        if total <= cap {
            return;
        }
        files.sort();
        for (_, len, path) in files {
            if total <= cap {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evicted.inc();
            }
        }
    }
}

/// Snapshot of the engine's cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Cell lookups (batch submissions + result collection).
    pub requested: u64,
    /// Lookups answered from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups answered from the on-disk tier.
    pub disk_hits: u64,
    /// Lookups that found their cell already in flight (here or on
    /// another client's request) and blocked on that single-flight slot
    /// instead of re-simulating.
    pub coalesced: u64,
    /// Corrupt on-disk entries found (and deleted) by lookups.
    pub corrupt: u64,
    /// On-disk entries deleted by size-cap sweeps.
    pub evicted: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// The subset of `simulated` that ran inline on a collection path
    /// (a cache miss outside any [`run_cells`] batch). Migrated
    /// experiments plan their whole grid up front, so this staying 0 is
    /// the plan-covers-collection contract; a nonzero value means cells
    /// are simulating single-threaded where the worker pool should have
    /// run them.
    ///
    /// [`run_cells`]: crate::Harness::run_cells
    pub inline_simulated: u64,
    /// Duplicate cells coalesced inside submitted batches before any
    /// lookup (the grid-dedup counter).
    pub deduped: u64,
}

impl EngineStats {
    /// Lookups that did not cost this requester a simulation: cache-tier
    /// hits plus waits coalesced onto an in-flight simulation.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.coalesced
    }

    /// Percentage of lookups served from a cache tier (100 when nothing
    /// was requested).
    #[must_use]
    pub fn hit_rate_percent(&self) -> f64 {
        if self.requested == 0 {
            return 100.0;
        }
        self.hits() as f64 * 100.0 / self.requested as f64
    }

    /// The one-line summary printed by the CLI (and asserted by CI's
    /// cache-behavior job).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "requested={} deduped={} mem_hits={} disk_hits={} coalesced={} corrupt={} evicted={} inline={} simulated={} hit_rate={:.1}%",
            self.requested,
            self.deduped,
            self.mem_hits,
            self.disk_hits,
            self.coalesced,
            self.corrupt,
            self.evicted,
            self.inline_simulated,
            self.simulated,
            self.hit_rate_percent()
        )
    }
}

/// One in-flight cell: the slot every later requester of the same key
/// blocks on instead of re-simulating. Plain `std` primitives — the
/// `parking_lot` shim has no condvar.
struct FlightSlot {
    state: Mutex<FlightState>,
    ready: Condvar,
}

enum FlightState {
    /// The leader is simulating (or loading from disk).
    Running,
    /// The leader published; every waiter gets this shared report.
    Done(Arc<SimReport>),
    /// The leader panicked without publishing; waiters re-contend for
    /// leadership (and re-hit the same panic if it is deterministic).
    Aborted,
}

impl FlightSlot {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Running),
            ready: Condvar::new(),
        }
    }

    fn finish(&self, state: FlightState) {
        *self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = state;
        self.ready.notify_all();
    }

    /// Blocks until the leader publishes or aborts.
    fn wait(&self) -> Option<Arc<SimReport>> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            match &*state {
                FlightState::Running => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                FlightState::Done(report) => return Some(Arc::clone(report)),
                FlightState::Aborted => return None,
            }
        }
    }
}

/// Unwinds a leader that never published: removes the in-flight slot and
/// wakes waiters so one of them can take over. Disarmed on publish.
struct FlightGuard<'a> {
    cache: &'a ResultCache,
    key: RunKey,
    slot: &'a Arc<FlightSlot>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&self.key);
            self.slot.finish(FlightState::Aborted);
        }
    }
}

/// What a single-flight claim resolved to.
enum Claim {
    /// This requester simulates; everyone else waits on the slot.
    Lead(Arc<FlightSlot>),
    /// Another requester holds the key; wait on its slot.
    Follow(Arc<FlightSlot>),
    /// The cell was published while taking the claim lock.
    Hit(Arc<SimReport>),
}

/// How a [`ResultCache::get_or_run`] request was resolved — recorded per
/// cell into the timing log that `--profile` dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// Answered from the in-memory tier.
    MemHit,
    /// Answered from the on-disk tier.
    DiskHit,
    /// Blocked on another requester's in-flight simulation.
    Coalesced,
    /// This requester led and simulated the cell.
    Simulated,
}

impl CellOutcome {
    /// The stable name used in rendered artifacts.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CellOutcome::MemHit => "mem_hit",
            CellOutcome::DiskHit => "disk_hit",
            CellOutcome::Coalesced => "coalesced",
            CellOutcome::Simulated => "simulated",
        }
    }
}

/// One cell's wall-clock record in the profile timing log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTiming {
    /// The submitter's label (workload/scheme), or the key's hex when
    /// the request came in unlabeled.
    pub label: String,
    /// How the request was resolved.
    pub outcome: CellOutcome,
    /// Nanoseconds the cell waited between batch submission and a worker
    /// picking it up (0 for unqueued requests).
    pub queue_wait_ns: u64,
    /// Nanoseconds from lookup start to resolution (includes simulate
    /// time for leaders and blocking time for coalesced followers).
    pub total_ns: u64,
}

/// Profile timing-log cap: a long-lived daemon must not grow the log
/// without bound, so entries past this are dropped (and counted).
const MAX_CELL_LOG: usize = 16_384;

/// The two-tier content-addressed cache with a cross-requester
/// single-flight layer: concurrent requests for one [`RunKey`] — from
/// several batches, threads, or service clients — cost exactly one
/// simulation.
///
/// Every counter the engine reports lives in a per-cache
/// [`MetricsRegistry`] (`run_cache_*` names): [`ResultCache::stats`] and
/// the `# run-engine:` summary line are rendered *from* those metrics,
/// and phase histograms (lookup / simulate / store / queue wait /
/// coalesce wait, all nanoseconds) sit alongside them for `--profile`
/// and the serve daemon's `STATS` frame.
pub struct ResultCache {
    mem: RwLock<HashMap<RunKey, Arc<SimReport>>>,
    mem_timelines: RwLock<HashMap<RunKey, Arc<Timeline>>>,
    disk: Option<DiskCache>,
    inflight: Mutex<HashMap<RunKey, Arc<FlightSlot>>>,
    registry: Arc<MetricsRegistry>,
    requested: Counter,
    mem_hits: Counter,
    disk_hits: Counter,
    coalesced: Counter,
    corrupt: Counter,
    simulated: Counter,
    inline_simulated: Counter,
    deduped: Counter,
    lookup_ns: Histogram,
    simulate_ns: Histogram,
    store_ns: Histogram,
    queue_wait_ns: Histogram,
    coalesce_wait_ns: Histogram,
    cell_log: Mutex<Vec<CellTiming>>,
    cell_log_dropped: Counter,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.mem.read().len())
            .field("disk", &self.disk)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl ResultCache {
    /// A memory-only cache (the default for library users and tests).
    #[must_use]
    pub fn in_memory() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        Self {
            mem: RwLock::new(HashMap::new()),
            mem_timelines: RwLock::new(HashMap::new()),
            disk: None,
            inflight: Mutex::new(HashMap::new()),
            requested: registry.counter("run_cache_requested_total"),
            mem_hits: registry.counter("run_cache_mem_hits_total"),
            disk_hits: registry.counter("run_cache_disk_hits_total"),
            coalesced: registry.counter("run_cache_coalesced_total"),
            corrupt: registry.counter("run_cache_corrupt_total"),
            simulated: registry.counter("run_cache_simulated_total"),
            inline_simulated: registry.counter("run_cache_inline_simulated_total"),
            deduped: registry.counter("run_cache_deduped_total"),
            lookup_ns: registry.histogram("run_cache_lookup_ns"),
            simulate_ns: registry.histogram("run_cache_simulate_ns"),
            store_ns: registry.histogram("run_cache_store_ns"),
            queue_wait_ns: registry.histogram("run_cache_queue_wait_ns"),
            coalesce_wait_ns: registry.histogram("run_cache_coalesce_wait_ns"),
            cell_log: Mutex::new(Vec::new()),
            cell_log_dropped: registry.counter("run_cache_cell_log_dropped_total"),
            registry,
        }
    }

    /// A cache backed by `disk` in addition to memory. The disk tier's
    /// eviction count is adopted into this cache's registry as
    /// `run_cache_evicted_total`.
    #[must_use]
    pub fn with_disk(disk: DiskCache) -> Self {
        let cache = Self {
            disk: Some(disk),
            ..Self::in_memory()
        };
        if let Some(d) = &cache.disk {
            cache
                .registry
                .adopt_counter("run_cache_evicted_total", &d.evicted);
        }
        cache
    }

    /// The cache's metrics registry (`run_cache_*` counters and phase
    /// histograms) — snapshot it for `--profile` artifacts and `STATS`
    /// frames.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The per-cell wall-clock timing log (capped at [`MAX_CELL_LOG`]
    /// entries; overflow is counted in `run_cache_cell_log_dropped_total`).
    #[must_use]
    pub fn cell_timings(&self) -> Vec<CellTiming> {
        self.cell_log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    fn log_cell(&self, timing: CellTiming) {
        let mut log = self
            .cell_log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if log.len() >= MAX_CELL_LOG {
            self.cell_log_dropped.inc();
        } else {
            log.push(timing);
        }
    }

    /// Looks one cell up: memory first, then disk (promoting a disk hit
    /// into memory). Counts one request plus the tier that answered.
    #[must_use]
    pub fn lookup(&self, key: RunKey) -> Option<Arc<SimReport>> {
        let _t = self.lookup_ns.span();
        self.requested.inc();
        if let Some(r) = self.mem.read().get(&key) {
            self.mem_hits.inc();
            return Some(Arc::clone(r));
        }
        match self.load_disk(key) {
            Some(report) => {
                self.disk_hits.inc();
                let arc = Arc::new(report);
                Some(Arc::clone(
                    self.mem.write().entry(key).or_insert_with(|| arc),
                ))
            }
            None => None,
        }
    }

    /// Disk-tier load with corruption accounting.
    fn load_disk(&self, key: RunKey) -> Option<SimReport> {
        match self.disk.as_ref()?.load_classified(key) {
            DiskLoad::Hit(report) => Some(report),
            DiskLoad::Miss => None,
            DiskLoad::Corrupt => {
                self.corrupt.inc();
                None
            }
        }
    }

    /// Records a freshly simulated cell into both tiers. If another thread
    /// raced the same key in, the first entry wins (both are identical by
    /// determinism) and its `Arc` is returned.
    pub fn insert_simulated(&self, key: RunKey, report: SimReport) -> Arc<SimReport> {
        self.simulated.inc();
        if let Some(d) = &self.disk {
            let _t = self.store_ns.span();
            d.store(key, &report);
        }
        let arc = Arc::new(report);
        Arc::clone(self.mem.write().entry(key).or_insert_with(|| arc))
    }

    /// Looks one timeline blob up: memory first, then disk (promoting a
    /// disk hit into memory). Timeline captures are deterministic, so
    /// they are deliberately *not* single-flighted — a racing duplicate
    /// capture wastes work but can never publish a different blob.
    #[must_use]
    pub fn lookup_timeline(&self, key: RunKey) -> Option<Arc<Timeline>> {
        if let Some(t) = self.mem_timelines.read().get(&key) {
            return Some(Arc::clone(t));
        }
        let timeline = self.disk.as_ref()?.load_timeline(key)?;
        let arc = Arc::new(timeline);
        Some(Arc::clone(
            self.mem_timelines.write().entry(key).or_insert_with(|| arc),
        ))
    }

    /// Records a freshly captured timeline blob into both tiers. On a
    /// racing insert the first entry wins (both are identical by
    /// determinism) and its `Arc` is returned.
    pub fn insert_timeline(&self, key: RunKey, timeline: Timeline) -> Arc<Timeline> {
        if let Some(d) = &self.disk {
            d.store_timeline(key, &timeline);
        }
        let arc = Arc::new(timeline);
        Arc::clone(self.mem_timelines.write().entry(key).or_insert_with(|| arc))
    }

    /// Single-flight resolution of one cell: answer from a cache tier,
    /// *lead* (run `simulate` and publish for everyone), or *follow*
    /// (block until the in-flight leader — possibly serving a different
    /// batch, thread, or service client — publishes). Exactly one
    /// requester per key ever simulates, per cache lifetime; this closes
    /// the lookup-then-simulate window that previously let two
    /// overlapping batches both miss and both simulate the same cell.
    ///
    /// Counts one request, plus `mem_hits`/`disk_hits`/`coalesced`/
    /// `simulated` for how the cell was resolved. If a leader panics, a
    /// waiter takes over leadership (and a deterministic panic
    /// propagates to every requester in turn).
    pub fn get_or_run<F>(&self, key: RunKey, simulate: F) -> Arc<SimReport>
    where
        F: FnOnce() -> SimReport,
    {
        self.get_or_run_labeled(key, None, 0, simulate)
    }

    /// [`ResultCache::get_or_run`] with profile attribution: `label`
    /// names the cell in the per-cell timing log (falling back to the
    /// key's hex) and `queue_wait_ns` is how long the request sat in a
    /// batch queue before this call (recorded into
    /// `run_cache_queue_wait_ns`).
    pub fn get_or_run_labeled<F>(
        &self,
        key: RunKey,
        label: Option<&str>,
        queue_wait_ns: u64,
        simulate: F,
    ) -> Arc<SimReport>
    where
        F: FnOnce() -> SimReport,
    {
        let started = Instant::now();
        if queue_wait_ns > 0 {
            self.queue_wait_ns.record(queue_wait_ns);
        }
        self.requested.inc();
        let mut simulate = Some(simulate);
        let (report, outcome) = loop {
            {
                let _t = self.lookup_ns.span();
                if let Some(r) = self.mem.read().get(&key) {
                    self.mem_hits.inc();
                    break (Arc::clone(r), CellOutcome::MemHit);
                }
            }
            match self.claim(key) {
                Claim::Hit(r) => {
                    self.mem_hits.inc();
                    break (r, CellOutcome::MemHit);
                }
                Claim::Follow(slot) => {
                    let wait = self.coalesce_wait_ns.span();
                    match slot.wait() {
                        Some(r) => {
                            self.coalesced.inc();
                            break (r, CellOutcome::Coalesced);
                        }
                        // The leader died; go claim leadership ourselves.
                        None => {
                            drop(wait);
                            continue;
                        }
                    }
                }
                Claim::Lead(slot) => {
                    let mut guard = FlightGuard {
                        cache: self,
                        key,
                        slot: &slot,
                        armed: true,
                    };
                    // Only the leader probes the disk tier, so a shared
                    // directory sees one read per key per process.
                    let probe = self.lookup_ns.span();
                    let loaded = self.load_disk(key);
                    drop(probe);
                    if let Some(report) = loaded {
                        self.disk_hits.inc();
                        break (
                            self.publish(&mut guard, Arc::new(report)),
                            CellOutcome::DiskHit,
                        );
                    }
                    let report = {
                        let _t = self.simulate_ns.span();
                        (simulate.take().expect("leader runs once"))()
                    };
                    self.simulated.inc();
                    if let Some(d) = &self.disk {
                        let _t = self.store_ns.span();
                        d.store(key, &report);
                    }
                    break (
                        self.publish(&mut guard, Arc::new(report)),
                        CellOutcome::Simulated,
                    );
                }
            }
        };
        self.log_cell(CellTiming {
            label: label.map_or_else(|| key.hex(), str::to_owned),
            outcome,
            queue_wait_ns,
            total_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
        report
    }

    /// Takes the single-flight claim for `key`. The memory tier is
    /// re-checked under the in-flight lock: a leader publishes to memory
    /// *before* releasing its slot, so a key absent from both maps here
    /// is provably not in flight.
    fn claim(&self, key: RunKey) -> Claim {
        let mut inflight = self
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(r) = self.mem.read().get(&key) {
            return Claim::Hit(Arc::clone(r));
        }
        match inflight.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => Claim::Follow(Arc::clone(e.get())),
            std::collections::hash_map::Entry::Vacant(v) => {
                let slot = Arc::new(FlightSlot::new());
                v.insert(Arc::clone(&slot));
                Claim::Lead(slot)
            }
        }
    }

    /// Leader-side publish: memory tier first (first writer wins), then
    /// release the in-flight slot and wake every waiter with the shared
    /// report.
    fn publish(&self, guard: &mut FlightGuard<'_>, report: Arc<SimReport>) -> Arc<SimReport> {
        let arc = Arc::clone(
            self.mem
                .write()
                .entry(guard.key)
                .or_insert_with(|| Arc::clone(&report)),
        );
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&guard.key);
        guard.armed = false;
        guard.slot.finish(FlightState::Done(Arc::clone(&arc)));
        arc
    }

    /// Records `n` in-batch duplicate submissions.
    pub fn note_deduped(&self, n: u64) {
        self.deduped.add(n);
    }

    /// Records one simulation that ran inline on a collection path
    /// instead of inside a submitted batch (see
    /// [`EngineStats::inline_simulated`]).
    pub fn note_inline_simulated(&self) {
        self.inline_simulated.inc();
    }

    /// Counter snapshot, read back from the metrics registry (the
    /// `# run-engine:` summary line is therefore rendered from the same
    /// counters `--profile` and `STATS` expose).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requested: self.requested.get(),
            mem_hits: self.mem_hits.get(),
            disk_hits: self.disk_hits.get(),
            coalesced: self.coalesced.get(),
            corrupt: self.corrupt.get(),
            evicted: self.disk.as_ref().map_or(0, DiskCache::evicted),
            simulated: self.simulated.get(),
            inline_simulated: self.inline_simulated.get(),
            deduped: self.deduped.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report(cycles: u64) -> SimReport {
        SimReport {
            total_cycles: cycles,
            ..SimReport::default()
        }
    }

    #[test]
    fn keys_are_stable_and_desc_sensitive() {
        let a = RunKey::from_desc("1c|Tiny|w5000|i25000|mcf|Baseline|ipcp|bw:default");
        let b = RunKey::from_desc("1c|Tiny|w5000|i25000|mcf|Baseline|ipcp|bw:default");
        assert_eq!(a, b, "same description, same key");
        let c = RunKey::from_desc("1c|Tiny|w5000|i25000|mcf|Baseline|berti|bw:default");
        assert_ne!(a, c, "different description, different key");
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn bandwidth_descs_never_alias() {
        assert_ne!(bandwidth_desc(Some(1.6)), bandwidth_desc(Some(1.6000001)));
        assert_ne!(bandwidth_desc(None), bandwidth_desc(Some(0.0)));
    }

    #[test]
    fn desc_shapes_are_disjoint() {
        let env = "Tiny|w5000|i25000";
        let s = single_desc(env, "mcf", "Baseline", "ipcp", "bw:default");
        let m = mix_desc(env, ["mcf"; 4], "Baseline", "ipcp", "bw:default");
        let c = custom_desc(env, "mcf", "Baseline", "ipcp", "lru");
        assert_ne!(s, m);
        assert_ne!(s, c);
        assert_ne!(m, c);
    }

    #[test]
    fn memory_tier_counts_hits_and_misses() {
        let cache = ResultCache::in_memory();
        let key = RunKey::from_desc("k");
        assert!(cache.lookup(key).is_none());
        cache.insert_simulated(key, report(42));
        assert_eq!(cache.lookup(key).expect("hit").total_cycles, 42);
        cache.note_deduped(3);
        let st = cache.stats();
        assert_eq!(st.requested, 2);
        assert_eq!(st.mem_hits, 1);
        assert_eq!(st.disk_hits, 0);
        assert_eq!(st.simulated, 1);
        assert_eq!(st.deduped, 3);
        assert!((st.hit_rate_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn disk_tier_survives_process_style_reopen() {
        let dir = tmp_dir("reopen");
        let key = RunKey::from_desc("cell");
        {
            let cache = ResultCache::with_disk(DiskCache::open(&dir).expect("open"));
            cache.insert_simulated(key, report(7));
        }
        // A fresh cache over the same directory: memory cold, disk warm.
        let cache = ResultCache::with_disk(DiskCache::open(&dir).expect("open"));
        let hit = cache.lookup(key).expect("disk hit");
        assert_eq!(hit.total_cycles, 7);
        let st = cache.stats();
        assert_eq!((st.disk_hits, st.simulated), (1, 0));
        // The disk hit was promoted: the next lookup is a memory hit.
        assert!(cache.lookup(key).is_some());
        assert_eq!(cache.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_deleted_and_counted() {
        let dir = tmp_dir("corrupt");
        let disk = DiskCache::open(&dir).expect("open");
        let key = RunKey::from_desc("cell");
        let entry = disk.dir().join(format!("{}.json", key.hex()));
        std::fs::write(&entry, "not json").expect("write garbage");
        let cache = ResultCache::with_disk(disk);
        assert!(cache.lookup(key).is_none());
        assert!(!entry.exists(), "corrupt entry must be deleted on sight");
        assert_eq!(cache.stats().corrupt, 1);
        // The next lookup is a clean miss, not another corruption.
        assert!(cache.lookup(key).is_none());
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_key_stores_never_tear() {
        // The pid-only temp name let two threads interleave writes into
        // one temp file; the per-writer sequence makes every temp path
        // unique, so each rename publishes a complete entry.
        let dir = tmp_dir("tmp-race");
        let disk = std::sync::Arc::new(DiskCache::open(&dir).expect("open"));
        let key = RunKey::from_desc("hot");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let disk = std::sync::Arc::clone(&disk);
                scope.spawn(move || {
                    for i in 0..50 {
                        disk.store(key, &report(t * 1000 + i));
                        if let DiskLoad::Corrupt = disk.load_classified(key) {
                            panic!("observed a torn entry");
                        }
                    }
                });
            }
        });
        assert!(disk.load(key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_sweep_evicts_oldest_entries() {
        let dir = tmp_dir("evict");
        let disk = DiskCache::open(&dir).expect("open").with_cap_bytes(1);
        let old = RunKey::from_desc("old");
        let new = RunKey::from_desc("new");
        disk.store(old, &report(1));
        // Make mtimes strictly ordered even on coarse filesystems.
        let past = std::time::SystemTime::now() - std::time::Duration::from_secs(600);
        let set_old = std::fs::File::open(dir.join(format!("{}.json", old.hex())))
            .and_then(|f| f.set_modified(past));
        disk.store(new, &report(2));
        disk.sweep();
        if set_old.is_ok() {
            assert!(disk.load(old).is_none(), "oldest entry must be evicted");
        }
        assert!(disk.evicted() > 0, "sweep must count evictions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_flight_coalesces_concurrent_requesters() {
        let cache = std::sync::Arc::new(ResultCache::in_memory());
        let key = RunKey::from_desc("slow-cell");
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let barrier = std::sync::Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let r = cache.get_or_run(key, || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        report(99)
                    });
                    assert_eq!(r.total_cycles, 99);
                });
            }
        });
        let st = cache.stats();
        assert_eq!(st.simulated, 1, "one leader simulates");
        assert_eq!(st.requested, 4);
        assert_eq!(
            st.coalesced + st.mem_hits,
            3,
            "everyone else coalesces onto the flight (or lands after publish): {st:?}"
        );
    }

    #[test]
    fn single_flight_survives_a_panicking_leader() {
        let cache = std::sync::Arc::new(ResultCache::in_memory());
        let key = RunKey::from_desc("doomed-then-fine");
        let started = std::sync::Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|scope| {
            let c = std::sync::Arc::clone(&cache);
            let b = std::sync::Arc::clone(&started);
            let leader = scope.spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    c.get_or_run(key, || {
                        b.wait();
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("leader dies mid-simulation");
                    })
                }));
            });
            // Start waiting only once the leader holds the flight.
            started.wait();
            let r = cache.get_or_run(key, || report(7));
            assert_eq!(r.total_cycles, 7, "follower takes over after the abort");
            leader.join().expect("leader thread joins");
        });
        assert_eq!(cache.stats().simulated, 1, "only the takeover publishes");
    }

    #[test]
    fn stats_are_rendered_from_the_metrics_registry() {
        let cache = ResultCache::in_memory();
        let key = RunKey::from_desc("k");
        let _ = cache.get_or_run_labeled(key, Some("mcf/Baseline"), 1_500, || report(3));
        let _ = cache.get_or_run(key, || report(3));
        let snap = cache.metrics().snapshot();
        assert_eq!(snap.counter("run_cache_requested_total"), Some(2));
        assert_eq!(snap.counter("run_cache_simulated_total"), Some(1));
        assert_eq!(snap.counter("run_cache_mem_hits_total"), Some(1));
        // The EngineStats snapshot and the registry agree by construction.
        let st = cache.stats();
        assert_eq!(st.requested, 2);
        assert_eq!(st.simulated, 1);
        assert_eq!(
            snap.histogram("run_cache_queue_wait_ns").map(|h| h.count),
            Some(1)
        );
        assert!(snap.histogram("run_cache_simulate_ns").unwrap().count == 1);

        let log = cache.cell_timings();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].label, "mcf/Baseline");
        assert_eq!(log[0].outcome, CellOutcome::Simulated);
        assert_eq!(log[0].queue_wait_ns, 1_500);
        assert_eq!(log[1].label, key.hex(), "unlabeled requests use the key");
        assert_eq!(log[1].outcome, CellOutcome::MemHit);
    }

    #[test]
    fn summary_line_reports_perfect_hit_rate() {
        let cache = ResultCache::in_memory();
        let key = RunKey::from_desc("k");
        cache.insert_simulated(key, report(1));
        let _ = cache.lookup(key);
        let line = cache.stats().summary_line();
        assert!(line.contains("hit_rate=100.0%"), "{line}");
        assert!(line.contains("simulated=1"), "{line}");
        assert_eq!(EngineStats::default().hit_rate_percent(), 100.0);
    }
}
