//! The harness trace tier: an LRU-capped in-memory map of captured
//! traces over the optional on-disk [`TraceStore`].
//!
//! Resolution order (see `Harness::trace_for`) is memory → disk →
//! capture. The memory tier exists because a sweep touches the same
//! workload across dozens of schemes; the disk tier exists so a *second
//! process* (CI rerun, serve-daemon restart) replays the exact captured
//! records instead of regenerating them.
//!
//! # Why eviction needs pinning
//!
//! Workload generators advance a per-workload pass counter that seeds
//! the generator, so capturing the same workload twice in one process
//! records *different* traces. Evicting a memory entry is therefore only
//! sound when the records also live in the disk store (a later request
//! streams the identical bytes back); an entry whose store write failed
//! — or that was captured with no store configured — is pinned in memory
//! for the life of the harness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tlp_trace::TraceRecord;

/// Default memory-tier capacity (distinct workloads) once a disk store
/// backs the tier. Without a store the tier is unbounded — eviction
/// would force a nondeterministic re-capture.
pub const DEFAULT_TRACE_MEM_CAP: usize = 16;

/// One memory-tier entry: shared records plus LRU/pinning bookkeeping.
struct MemTrace {
    records: Arc<Vec<TraceRecord>>,
    /// Logical timestamp of the last lookup (tier clock).
    last_use: u64,
    /// `true` when the identical records are known to be on disk, making
    /// eviction safe.
    evictable: bool,
}

/// LRU map of in-memory traces. Interior mutability is the caller's
/// problem (the harness holds it behind a `Mutex`); the type itself is
/// plain data plus the eviction policy.
#[derive(Default)]
pub(crate) struct TraceTier {
    map: HashMap<String, MemTrace>,
    clock: u64,
}

impl TraceTier {
    /// Looks up `name`, refreshing its LRU stamp on a hit.
    pub(crate) fn touch(&mut self, name: &str) -> Option<Arc<Vec<TraceRecord>>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(name).map(|e| {
            e.last_use = clock;
            Arc::clone(&e.records)
        })
    }

    /// Inserts a freshly captured trace. `evictable` must only be `true`
    /// when the records were successfully persisted to the disk store.
    pub(crate) fn insert(&mut self, name: String, records: Arc<Vec<TraceRecord>>, evictable: bool) {
        self.clock += 1;
        self.map.insert(
            name,
            MemTrace {
                records,
                last_use: self.clock,
                evictable,
            },
        );
    }

    /// Evicts least-recently-used *evictable* entries until the tier
    /// holds at most `cap` entries (pinned entries never count toward
    /// eviction candidates, so the tier can exceed `cap` when many pins
    /// accumulate). Returns the number of evictions.
    pub(crate) fn evict_to(&mut self, cap: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() > cap {
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| e.evictable)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.map.remove(&name);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    /// Number of resident entries.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

/// Counters for the trace tier, mirrored into the harness summary line.
#[derive(Default)]
pub(crate) struct TraceTierCounters {
    pub(crate) mem_hits: AtomicU64,
    pub(crate) disk_hits: AtomicU64,
    pub(crate) captures: AtomicU64,
    pub(crate) evictions: AtomicU64,
}

/// Snapshot of the trace tier's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTierStats {
    /// Lookups answered by the in-memory tier.
    pub mem_hits: u64,
    /// Lookups answered by streaming a stored (or `trace:`) file.
    pub disk_hits: u64,
    /// Fresh workload captures (a warm trace dir should show zero on a
    /// second run).
    pub captures: u64,
    /// Memory-tier entries evicted under the LRU cap.
    pub evictions: u64,
    /// Corrupt store files detected (and deleted) while resolving.
    pub corrupt: u64,
    /// Entries currently resident in the memory tier.
    pub resident: u64,
}

impl TraceTierCounters {
    pub(crate) fn snapshot(&self, corrupt: u64, resident: u64) -> TraceTierStats {
        TraceTierStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            captures: self.captures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt,
            resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Arc<Vec<TraceRecord>> {
        Arc::new(vec![TraceRecord::branch(0x400, true, 0x400, None)])
    }

    #[test]
    fn lru_evicts_least_recent_evictable() {
        let mut t = TraceTier::default();
        t.insert("a".into(), recs(), true);
        t.insert("b".into(), recs(), true);
        t.insert("c".into(), recs(), true);
        assert!(t.touch("a").is_some()); // refresh a: b is now LRU
        assert_eq!(t.evict_to(2), 1);
        assert!(t.touch("b").is_none(), "b was least-recently used");
        assert!(t.touch("a").is_some());
        assert!(t.touch("c").is_some());
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut t = TraceTier::default();
        t.insert("pinned".into(), recs(), false);
        t.insert("disk1".into(), recs(), true);
        t.insert("disk2".into(), recs(), true);
        assert_eq!(t.evict_to(1), 2, "both evictable entries go");
        assert_eq!(t.len(), 1);
        assert!(t.touch("pinned").is_some(), "pinned entry must survive");
        // A tier of only pinned entries over cap stops evicting rather
        // than violating the determinism constraint.
        t.insert("pinned2".into(), recs(), false);
        assert_eq!(t.evict_to(1), 0);
        assert_eq!(t.len(), 2);
    }
}
