//! The evaluated schemes (paper §V-E plus extension studies) and L1D
//! prefetcher choices, as thin constructors over the plugin registry.
//!
//! Before the registry existed, this module *was* the composition layer:
//! closed enums with a hard-coded `build_setup` match. The enums remain —
//! they are the convenient, type-safe spelling the experiments use — but
//! each variant now merely names a [`SchemeSpec`] composed from
//! registry-backed components ([`Scheme::to_spec`]), and the component
//! construction itself lives with the component crates
//! (`tlp_core::register_builtin`, `tlp_prefetch::register_builtin`, ...).
//! Adding a new composition no longer means editing this file: register
//! components, build a spec, run it through
//! [`Session`](crate::session::Session) or `tlp_repro --scheme`.
//!
//! Cache-key discipline: every variant pins its pre-registry key
//! ([`SchemeSpec::pinned_key`]), so the `RunKey` of every built-in cell
//! is byte-identical to the pre-refactor harness — golden fixtures and
//! on-disk caches survive. `tests/plugin_api.rs` pins the full key list.

use std::collections::HashMap;
use std::sync::Arc;

use tlp_core::variants::TlpVariant;
use tlp_plugin::{
    BuildCtx, ComponentRef, L1PrefetcherFactory, ResolvedComponent, ResolvedScheme, SchemeSpec,
};
use tlp_rl::SharedAgent;
use tlp_sim::engine::CoreSetup;
use tlp_trace::TraceSource;

pub use tlp_core::TlpParams;

use crate::plugins::builtin_registry;

/// A resolved L1D prefetcher choice (the second axis of the evaluation
/// grid), ready to build on worker threads.
pub type ResolvedL1Pf = ResolvedComponent<L1PrefetcherFactory>;

/// The L1D prefetcher driving the system (the paper evaluates IPCP and
/// Berti; the rest support tests and ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Pf {
    /// No L1D prefetching.
    None,
    /// IPCP (the paper's primary configuration).
    Ipcp,
    /// Berti.
    Berti,
    /// IPCP with 4× tables (Figure 17's "+7 KB").
    IpcpExtra,
    /// Berti with 4× tables (Figure 17's "+7 KB").
    BertiExtra,
    /// Next-line (ablation/reference).
    NextLine,
    /// Per-PC stride (ablation/reference).
    Stride,
}

impl L1Pf {
    /// All variants, in display order.
    pub const ALL: [L1Pf; 7] = [
        L1Pf::None,
        L1Pf::Ipcp,
        L1Pf::Berti,
        L1Pf::IpcpExtra,
        L1Pf::BertiExtra,
        L1Pf::NextLine,
        L1Pf::Stride,
    ];

    /// Display name — also the registered component name, so it doubles
    /// as the cache-key fragment and the `--l1pf` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            L1Pf::None => "none",
            L1Pf::Ipcp => "ipcp",
            L1Pf::Berti => "berti",
            L1Pf::IpcpExtra => "ipcp+7KB",
            L1Pf::BertiExtra => "berti+7KB",
            L1Pf::NextLine => "next-line",
            L1Pf::Stride => "stride",
        }
    }

    /// The registry reference for this choice.
    #[must_use]
    pub fn to_ref(self) -> ComponentRef {
        ComponentRef::new(self.name())
    }

    /// Resolves against the built-in registry (memoized — cell creation
    /// calls this once per grid cell).
    #[must_use]
    pub fn resolve(self) -> Arc<ResolvedL1Pf> {
        static CACHE: std::sync::OnceLock<parking_lot::Mutex<HashMap<L1Pf, Arc<ResolvedL1Pf>>>> =
            std::sync::OnceLock::new();
        let cache = CACHE.get_or_init(Default::default);
        if let Some(r) = cache.lock().get(&self) {
            return Arc::clone(r);
        }
        let resolved = Arc::new(
            builtin_registry()
                .resolve_l1_prefetcher(&self.to_ref())
                .expect("every L1Pf variant is a registered built-in"),
        );
        cache.lock().insert(self, Arc::clone(&resolved));
        resolved
    }
}

/// The compared mechanisms (paper §V-E plus the Figure-15/17 variants and
/// the extension studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Table III system: L1D prefetcher + standard SPP at L2, no off-chip
    /// prediction, no filtering.
    Baseline,
    /// Aggressive SPP + PPF filter at L2.
    Ppf,
    /// Baseline + Hermes off-chip predictor.
    Hermes,
    /// Hermes and PPF together.
    HermesPpf,
    /// The full TLP proposal (FLP + SLP).
    Tlp,
    /// A Figure-15 ablation variant.
    Variant(TlpVariant),
    /// Hermes with TLP's 7 KB storage budget added (Figure 17).
    HermesExtra,
    /// Level Prediction (Jalili & Erez, HPCA 2022) — related-work
    /// comparison (extension experiment E1).
    Lp,
    /// TLP with explicit sensitivity knobs (extension experiments E3–E5).
    TlpCustom(TlpParams),
    /// "Hermes+TLP" (§VI-B2): TLP's SLP filter with FLP issuing at the
    /// core like Hermes (no selective delay). The paper notes this wins
    /// over TLP only under unrealistically abundant DRAM bandwidth.
    HermesTlp,
    /// Athena-class baseline (extension experiment E7): one online RL
    /// agent coordinating both seams — off-chip prediction for demand
    /// loads and L1D prefetch filtering — in place of TLP's hand-tuned
    /// thresholds.
    AthenaRl,
}

/// Standard SPP at the L2 (the shared substrate of most schemes).
fn spp_standard() -> ComponentRef {
    ComponentRef::new("spp").param("profile", "standard")
}

impl Scheme {
    /// The four headline schemes of Figures 10–14.
    pub const HEADLINE: [Scheme; 4] = [Scheme::Ppf, Scheme::Hermes, Scheme::HermesPpf, Scheme::Tlp];

    /// Display name (matches the paper's legends).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Ppf => "PPF",
            Scheme::Hermes => "Hermes",
            Scheme::HermesPpf => "Hermes+PPF",
            Scheme::Tlp => "TLP",
            Scheme::Variant(v) => v.name(),
            Scheme::HermesExtra => "Hermes+7KB",
            Scheme::Lp => "LP",
            Scheme::TlpCustom(_) => "TLP*",
            Scheme::HermesTlp => "Hermes+TLP",
            Scheme::AthenaRl => "AthenaRl",
        }
    }

    /// Stable key for caches. These strings predate the registry and
    /// address every historical fixture and on-disk cache entry; the
    /// spec produced by [`Scheme::to_spec`] pins exactly this value.
    #[must_use]
    pub fn key(self) -> String {
        match self {
            Scheme::Variant(v) => format!("variant:{}", v.name()),
            Scheme::TlpCustom(p) => format!("tlp:{}", p.canonical_key()),
            other => other.name().to_owned(),
        }
    }

    /// The registry-backed spec this enum variant names.
    #[must_use]
    pub fn to_spec(self) -> SchemeSpec {
        let spec = SchemeSpec::new(self.name()).pinned_key(self.key());
        match self {
            Scheme::Baseline => spec.l2_prefetcher(spp_standard()),
            Scheme::Ppf => spec
                .l2_prefetcher(ComponentRef::new("spp").param("profile", "aggressive"))
                .l2_filter("ppf"),
            Scheme::Hermes => spec.l2_prefetcher(spp_standard()).offchip("hermes"),
            Scheme::HermesPpf => spec
                .l2_prefetcher(ComponentRef::new("spp").param("profile", "aggressive"))
                .l2_filter("ppf")
                .offchip("hermes"),
            Scheme::Tlp => variant_spec(spec, TlpVariant::Full),
            Scheme::Variant(v) => variant_spec(spec, v),
            Scheme::HermesExtra => spec
                .l2_prefetcher(spp_standard())
                .offchip(ComponentRef::new("hermes").param("storage", "extra")),
            Scheme::Lp => spec.l2_prefetcher(spp_standard()).offchip("lp"),
            Scheme::TlpCustom(p) => spec
                .l2_prefetcher(spp_standard())
                .offchip(ComponentRef {
                    name: "flp".to_owned(),
                    params: p.to_params(),
                })
                .l1_filter(ComponentRef {
                    name: "slp".to_owned(),
                    params: p.to_params(),
                }),
            Scheme::HermesTlp => spec
                .l2_prefetcher(spp_standard())
                .offchip(ComponentRef::new("flp").param("delay", "never"))
                .l1_filter("slp"),
            Scheme::AthenaRl => spec
                .l2_prefetcher(spp_standard())
                .offchip("athena-rl")
                .l1_filter("athena-rl-filter"),
        }
    }

    /// Resolves against the built-in registry. Memoized: cell creation
    /// calls this once per grid cell, and a `--all` run plans thousands
    /// of cells over a handful of distinct schemes (the `TlpCustom`
    /// family is bounded by the sensitivity experiments' sweep points).
    #[must_use]
    pub fn resolve(self) -> Arc<ResolvedScheme> {
        static CACHE: std::sync::OnceLock<
            parking_lot::Mutex<HashMap<Scheme, Arc<ResolvedScheme>>>,
        > = std::sync::OnceLock::new();
        let cache = CACHE.get_or_init(Default::default);
        if let Some(r) = cache.lock().get(&self) {
            return Arc::clone(r);
        }
        let resolved = Arc::new(
            builtin_registry()
                .resolve(&self.to_spec())
                .expect("every Scheme variant resolves against the built-in registry"),
        );
        cache.lock().insert(self, Arc::clone(&resolved));
        resolved
    }

    /// Assembles a [`CoreSetup`] for this scheme around a trace.
    #[must_use]
    pub fn build_setup(self, trace: Box<dyn TraceSource>, l1pf: L1Pf) -> CoreSetup {
        builtin_registry()
            .build_setup(
                &self.to_spec(),
                Some(&l1pf.to_ref()),
                trace,
                &mut BuildCtx::new(),
            )
            .expect("built-in schemes always assemble")
    }

    /// Assembles the [`Scheme::AthenaRl`] system around an externally
    /// owned agent, by seeding the build context's
    /// [`tlp_rl::AGENT_SLOT`] before the factories run. The
    /// learning-curve experiment (ext7) and the `rl_agent` example
    /// persist one agent across epochs; routing them through the same
    /// spec as the head-to-head keeps both studies measuring the same
    /// system.
    #[must_use]
    pub fn athena_rl_setup(
        trace: Box<dyn TraceSource>,
        l1pf: L1Pf,
        agent: SharedAgent,
    ) -> CoreSetup {
        let mut ctx = BuildCtx::new();
        ctx.seed(tlp_rl::AGENT_SLOT, agent);
        builtin_registry()
            .build_setup(
                &Scheme::AthenaRl.to_spec(),
                Some(&l1pf.to_ref()),
                trace,
                &mut ctx,
            )
            .expect("the AthenaRl scheme always assembles")
    }
}

/// The Figure-15 ablation compositions, spelled as component parameters
/// (mirrors the table in [`tlp_core::variants`]).
fn variant_spec(spec: SchemeSpec, v: TlpVariant) -> SchemeSpec {
    let flp = |delay: &str| ComponentRef::new("flp").param("delay", delay);
    let slp = |leveling: bool| ComponentRef::new("slp").param("leveling", leveling);
    let spec = spec.l2_prefetcher(spp_standard());
    match v {
        TlpVariant::FlpOnly => spec.offchip(flp("never")),
        TlpVariant::SlpOnly => spec.l1_filter(slp(false)),
        TlpVariant::Tsp => spec.offchip(flp("never")).l1_filter(slp(false)),
        TlpVariant::DelayedTsp => spec.offchip(flp("always")).l1_filter(slp(false)),
        TlpVariant::SelectiveTsp => spec.offchip(flp("selective")).l1_filter(slp(false)),
        TlpVariant::Full => spec.offchip(flp("selective")).l1_filter(slp(true)),
    }
}

/// Every enum-spelled scheme, for listings and exhaustive tests (the
/// `TlpCustom` family is parameterized and represented by the paper
/// point).
#[must_use]
pub fn all_builtin_schemes() -> Vec<Scheme> {
    let mut all = vec![
        Scheme::Baseline,
        Scheme::Ppf,
        Scheme::Hermes,
        Scheme::HermesPpf,
        Scheme::Tlp,
        Scheme::HermesExtra,
        Scheme::Lp,
        Scheme::TlpCustom(TlpParams::paper()),
        Scheme::HermesTlp,
        Scheme::AthenaRl,
    ];
    all.extend(TlpVariant::ALL.iter().map(|v| Scheme::Variant(*v)));
    all
}

/// Registers the named built-in schemes (the `--scheme` lookup space).
/// `TlpCustom` is parameterized and therefore not nameable; `Variant`s
/// register under their Figure-15 legend names, except `Full`, whose
/// name ("TLP") belongs to [`Scheme::Tlp`].
///
/// # Errors
///
/// Propagates registration collisions.
pub fn register_builtin_schemes(
    reg: &mut tlp_plugin::ComponentRegistry,
) -> Result<(), tlp_plugin::PluginError> {
    const ORIGIN: &str = "tlp-harness";
    for s in [
        Scheme::Baseline,
        Scheme::Ppf,
        Scheme::Hermes,
        Scheme::HermesPpf,
        Scheme::Tlp,
        Scheme::HermesExtra,
        Scheme::Lp,
        Scheme::HermesTlp,
        Scheme::AthenaRl,
    ] {
        reg.register_scheme(s.to_spec(), ORIGIN)?;
    }
    for v in TlpVariant::ALL {
        if v != TlpVariant::Full {
            reg.register_scheme(Scheme::Variant(v).to_spec(), ORIGIN)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_trace::{TraceRecord, VecTrace};

    fn trace() -> Box<dyn TraceSource> {
        let recs = vec![TraceRecord::alu(0, None, [None, None])];
        Box::new(VecTrace::looping("t", recs))
    }

    #[test]
    fn every_scheme_builds() {
        for s in all_builtin_schemes() {
            let _ = s.build_setup(trace(), L1Pf::Ipcp);
        }
        for v in TlpVariant::ALL {
            let _ = Scheme::Variant(v).build_setup(trace(), L1Pf::Berti);
        }
    }

    #[test]
    fn specs_pin_the_legacy_cache_keys() {
        for s in all_builtin_schemes() {
            assert_eq!(s.to_spec().cache_key(), s.key(), "{s:?}");
            assert_eq!(s.to_spec().name(), s.name(), "{s:?}");
            assert_eq!(s.resolve().cache_key, s.key(), "{s:?}");
        }
    }

    #[test]
    fn custom_keys_distinguish_params() {
        let a = Scheme::TlpCustom(TlpParams::paper());
        let b = Scheme::TlpCustom(TlpParams {
            tau_high: 99,
            ..TlpParams::paper()
        });
        assert_ne!(a.key(), b.key());
        assert_eq!(a.name(), "TLP*");
    }

    #[test]
    fn tlp_custom_key_matches_the_historical_debug_format() {
        // The pre-registry key was `format!("tlp:{p:?}")` with derived
        // Debug; the canonical key must reproduce it byte-for-byte so
        // warm caches stay warm.
        let p = TlpParams::paper();
        assert_eq!(Scheme::TlpCustom(p).key(), format!("tlp:{p:?}"));
        assert_eq!(
            Scheme::TlpCustom(p).key(),
            "tlp:TlpParams { tau_high: 14, tau_low: 2, tau_pref: 6, resize: (1, 1), drop_feature: None }"
        );
    }

    #[test]
    fn keys_are_unique() {
        let keys: Vec<String> = all_builtin_schemes().into_iter().map(Scheme::key).collect();
        let set: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn l1pf_names_are_unique_and_registered() {
        let set: std::collections::HashSet<&str> = L1Pf::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(set.len(), L1Pf::ALL.len());
        for p in L1Pf::ALL {
            assert_eq!(p.resolve().key, p.name());
        }
    }

    #[test]
    fn named_schemes_resolve_from_the_registry() {
        let reg = builtin_registry();
        for name in ["Baseline", "TLP", "Hermes+PPF", "AthenaRl", "Selective TSP"] {
            let spec = reg.scheme(name).expect(name);
            assert_eq!(spec.name(), name);
        }
        assert!(reg.scheme("TLP*").is_err(), "TlpCustom is not nameable");
    }
}
