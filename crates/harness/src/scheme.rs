//! The evaluated schemes (paper §V-E plus extension studies) and L1D
//! prefetcher choices.

use tlp_baselines::{Hermes, HermesConfig, Lp, LpConfig, Ppf, PpfConfig};
use tlp_core::variants::TlpVariant;
use tlp_core::{Flp, OffChipPerceptronConfig, Slp, TlpConfig};
use tlp_prefetch::{Berti, Ipcp, NextLine, Spp, SppConfig, StridePrefetcher};
use tlp_rl::{shared_agent, RlConfig, RlOffChip, RlPrefetchFilter, SharedAgent};
use tlp_sim::engine::CoreSetup;
use tlp_sim::hooks::L1Prefetcher;
use tlp_trace::TraceSource;

/// The L1D prefetcher driving the system (the paper evaluates IPCP and
/// Berti; the rest support tests and ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Pf {
    /// No L1D prefetching.
    None,
    /// IPCP (the paper's primary configuration).
    Ipcp,
    /// Berti.
    Berti,
    /// IPCP with 4× tables (Figure 17's "+7 KB").
    IpcpExtra,
    /// Berti with 4× tables (Figure 17's "+7 KB").
    BertiExtra,
    /// Next-line (ablation/reference).
    NextLine,
    /// Per-PC stride (ablation/reference).
    Stride,
}

impl L1Pf {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            L1Pf::None => "none",
            L1Pf::Ipcp => "ipcp",
            L1Pf::Berti => "berti",
            L1Pf::IpcpExtra => "ipcp+7KB",
            L1Pf::BertiExtra => "berti+7KB",
            L1Pf::NextLine => "next-line",
            L1Pf::Stride => "stride",
        }
    }

    fn build(self) -> Box<dyn L1Prefetcher> {
        match self {
            L1Pf::None => Box::new(tlp_sim::hooks::NoL1Prefetcher),
            L1Pf::Ipcp => Box::new(Ipcp::new()),
            L1Pf::Berti => Box::new(Berti::new()),
            L1Pf::IpcpExtra => Box::new(Ipcp::with_scale(4)),
            L1Pf::BertiExtra => Box::new(Berti::with_scale(4)),
            L1Pf::NextLine => Box::new(NextLine::new(1)),
            L1Pf::Stride => Box::new(StridePrefetcher::default()),
        }
    }
}

/// Knobs for a parameterized TLP (the sensitivity extension experiments:
/// threshold sweeps, drop-one-feature, storage resizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlpParams {
    /// FLP issue-immediately threshold τ_high.
    pub tau_high: i32,
    /// FLP predict-off-chip threshold τ_low.
    pub tau_low: i32,
    /// SLP discard threshold τ_pref.
    pub tau_pref: i32,
    /// Weight-table resize factor `(num, den)`; `(1, 1)` is Table II.
    pub resize: (u8, u8),
    /// Base feature dropped from both FLP and SLP (None = all five).
    pub drop_feature: Option<u8>,
}

impl TlpParams {
    /// The paper's operating point.
    #[must_use]
    pub fn paper() -> Self {
        let flp = tlp_core::FlpConfig::paper();
        let slp = tlp_core::SlpConfig::paper();
        Self {
            tau_high: flp.tau_high,
            tau_low: flp.tau_low,
            tau_pref: slp.tau_pref,
            resize: (1, 1),
            drop_feature: None,
        }
    }

    /// Materializes a [`TlpConfig`] with these knobs applied.
    #[must_use]
    pub fn build_config(self) -> TlpConfig {
        let perceptron = match self.drop_feature {
            Some(i) => OffChipPerceptronConfig::without_feature(i as usize),
            None => {
                OffChipPerceptronConfig::resized(self.resize.0 as usize, self.resize.1 as usize)
            }
        };
        let mut cfg = TlpConfig::paper();
        cfg.flp.perceptron = perceptron;
        cfg.flp.tau_high = self.tau_high;
        cfg.flp.tau_low = self.tau_low;
        cfg.slp.perceptron = perceptron;
        cfg.slp.tau_pref = self.tau_pref;
        // The leveling table resizes with the rest of the budget.
        let scaled = (cfg.slp.leveling_table * self.resize.0 as usize / self.resize.1 as usize)
            .max(16)
            .next_power_of_two();
        cfg.slp.leveling_table = if scaled.is_power_of_two() && scaled <= 4096 {
            scaled
        } else {
            512
        };
        cfg
    }

    /// A short display label, e.g. `τh=14 τl=2 τp=6`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = format!(
            "τh={} τl={} τp={}",
            self.tau_high, self.tau_low, self.tau_pref
        );
        if self.resize != (1, 1) {
            s.push_str(&format!(" ×{}/{}", self.resize.0, self.resize.1));
        }
        if let Some(f) = self.drop_feature {
            s.push_str(&format!(" -f{f}"));
        }
        s
    }
}

impl Default for TlpParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The compared mechanisms (paper §V-E plus the Figure-15/17 variants and
/// the extension studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Table III system: L1D prefetcher + standard SPP at L2, no off-chip
    /// prediction, no filtering.
    Baseline,
    /// Aggressive SPP + PPF filter at L2.
    Ppf,
    /// Baseline + Hermes off-chip predictor.
    Hermes,
    /// Hermes and PPF together.
    HermesPpf,
    /// The full TLP proposal (FLP + SLP).
    Tlp,
    /// A Figure-15 ablation variant.
    Variant(TlpVariant),
    /// Hermes with TLP's 7 KB storage budget added (Figure 17).
    HermesExtra,
    /// Level Prediction (Jalili & Erez, HPCA 2022) — related-work
    /// comparison (extension experiment E1).
    Lp,
    /// TLP with explicit sensitivity knobs (extension experiments E3–E5).
    TlpCustom(TlpParams),
    /// "Hermes+TLP" (§VI-B2): TLP's SLP filter with FLP issuing at the
    /// core like Hermes (no selective delay). The paper notes this wins
    /// over TLP only under unrealistically abundant DRAM bandwidth.
    HermesTlp,
    /// Athena-class baseline (extension experiment E7): one online RL
    /// agent coordinating both seams — off-chip prediction for demand
    /// loads and L1D prefetch filtering — in place of TLP's hand-tuned
    /// thresholds.
    AthenaRl,
}

impl Scheme {
    /// The four headline schemes of Figures 10–14.
    pub const HEADLINE: [Scheme; 4] = [Scheme::Ppf, Scheme::Hermes, Scheme::HermesPpf, Scheme::Tlp];

    /// Display name (matches the paper's legends).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::Ppf => "PPF",
            Scheme::Hermes => "Hermes",
            Scheme::HermesPpf => "Hermes+PPF",
            Scheme::Tlp => "TLP",
            Scheme::Variant(v) => v.name(),
            Scheme::HermesExtra => "Hermes+7KB",
            Scheme::Lp => "LP",
            Scheme::TlpCustom(_) => "TLP*",
            Scheme::HermesTlp => "Hermes+TLP",
            Scheme::AthenaRl => "AthenaRl",
        }
    }

    /// Stable key for caches.
    #[must_use]
    pub fn key(self) -> String {
        match self {
            Scheme::Variant(v) => format!("variant:{}", v.name()),
            Scheme::TlpCustom(p) => format!("tlp:{p:?}"),
            other => other.name().to_owned(),
        }
    }

    /// Assembles a [`CoreSetup`] for this scheme around a trace.
    #[must_use]
    pub fn build_setup(self, trace: Box<dyn TraceSource>, l1pf: L1Pf) -> CoreSetup {
        if matches!(self, Scheme::AthenaRl) {
            // One fresh agent behind both seams: that coordination is the
            // point of the Athena design. (Persistent-agent studies build
            // the same system through [`athena_rl_setup`] directly.)
            return Self::athena_rl_setup(trace, l1pf, shared_agent(RlConfig::default_config()));
        }
        let mut setup = CoreSetup::new(trace).with_l1_prefetcher(l1pf.build());
        match self {
            Scheme::Baseline => {
                setup = setup.with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())));
            }
            Scheme::Ppf => {
                setup = setup
                    .with_l2_prefetcher(Box::new(Spp::new(SppConfig::aggressive())))
                    .with_l2_filter(Box::new(Ppf::new(PpfConfig::paper())));
            }
            Scheme::Hermes => {
                setup = setup
                    .with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())))
                    .with_offchip(Box::new(Hermes::new(HermesConfig::paper())));
            }
            Scheme::HermesPpf => {
                setup = setup
                    .with_l2_prefetcher(Box::new(Spp::new(SppConfig::aggressive())))
                    .with_l2_filter(Box::new(Ppf::new(PpfConfig::paper())))
                    .with_offchip(Box::new(Hermes::new(HermesConfig::paper())));
            }
            Scheme::Tlp => {
                return Scheme::Variant(TlpVariant::Full).build_setup_inner(setup);
            }
            Scheme::Variant(_) => {
                return self.build_setup_inner(setup);
            }
            Scheme::HermesExtra => {
                setup = setup
                    .with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())))
                    .with_offchip(Box::new(Hermes::new(HermesConfig::with_extra_storage())));
            }
            Scheme::Lp => {
                setup = setup
                    .with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())))
                    .with_offchip(Box::new(Lp::new(LpConfig::hpca22())));
            }
            Scheme::TlpCustom(params) => {
                let cfg = params.build_config();
                setup = setup
                    .with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())))
                    .with_offchip(Box::new(Flp::new(cfg.flp)))
                    .with_l1_filter(Box::new(Slp::new(cfg.slp)));
            }
            Scheme::HermesTlp => {
                let cfg = TlpConfig::paper();
                setup = setup
                    .with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())))
                    .with_offchip(Box::new(Flp::new(tlp_core::FlpConfig {
                        delay: tlp_core::DelayMode::Never,
                        ..cfg.flp
                    })))
                    .with_l1_filter(Box::new(Slp::new(cfg.slp)));
            }
            Scheme::AthenaRl => unreachable!("handled before the generic setup is built"),
        }
        setup
    }

    /// Assembles the [`Scheme::AthenaRl`] system around an externally
    /// owned agent. The learning-curve experiment (ext7) and the
    /// `rl_agent` example persist one agent across epochs; this is the
    /// single place the AthenaRl wiring lives, so the head-to-head and
    /// the persistent-agent studies always measure the same system.
    #[must_use]
    pub fn athena_rl_setup(
        trace: Box<dyn TraceSource>,
        l1pf: L1Pf,
        agent: SharedAgent,
    ) -> CoreSetup {
        CoreSetup::new(trace)
            .with_l1_prefetcher(l1pf.build())
            .with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())))
            .with_offchip(Box::new(RlOffChip::new(agent.clone())))
            .with_l1_filter(Box::new(RlPrefetchFilter::new(agent)))
    }

    fn build_setup_inner(self, mut setup: CoreSetup) -> CoreSetup {
        let Scheme::Variant(v) = self else {
            unreachable!("only called for variants");
        };
        setup = setup.with_l2_prefetcher(Box::new(Spp::new(SppConfig::standard())));
        let (flp, slp) = v.build(&TlpConfig::paper());
        if let Some(flp) = flp {
            setup = setup.with_offchip(Box::new(flp));
        }
        if let Some(slp) = slp {
            setup = setup.with_l1_filter(Box::new(slp));
        }
        setup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_trace::{TraceRecord, VecTrace};

    fn trace() -> Box<dyn TraceSource> {
        let recs = vec![TraceRecord::alu(0, None, [None, None])];
        Box::new(VecTrace::looping("t", recs))
    }

    #[test]
    fn every_scheme_builds() {
        for s in [
            Scheme::Baseline,
            Scheme::Ppf,
            Scheme::Hermes,
            Scheme::HermesPpf,
            Scheme::Tlp,
            Scheme::HermesExtra,
            Scheme::Lp,
            Scheme::TlpCustom(TlpParams::paper()),
            Scheme::HermesTlp,
            Scheme::AthenaRl,
        ] {
            let _ = s.build_setup(trace(), L1Pf::Ipcp);
        }
        for v in TlpVariant::ALL {
            let _ = Scheme::Variant(v).build_setup(trace(), L1Pf::Berti);
        }
    }

    #[test]
    fn custom_params_materialize() {
        let p = TlpParams {
            tau_high: 20,
            tau_low: 4,
            tau_pref: 10,
            resize: (1, 2),
            drop_feature: None,
        };
        let cfg = p.build_config();
        assert_eq!(cfg.flp.tau_high, 20);
        assert_eq!(cfg.flp.tau_low, 4);
        assert_eq!(cfg.slp.tau_pref, 10);
        assert_eq!(cfg.flp.perceptron.table_sizes[0], 512);
        assert_eq!(cfg.slp.perceptron.table_sizes[0], 512);
    }

    #[test]
    fn paper_params_reproduce_paper_config() {
        let cfg = TlpParams::paper().build_config();
        let paper = TlpConfig::paper();
        assert_eq!(cfg.flp.tau_high, paper.flp.tau_high);
        assert_eq!(cfg.flp.tau_low, paper.flp.tau_low);
        assert_eq!(cfg.slp.tau_pref, paper.slp.tau_pref);
        assert_eq!(
            cfg.flp.perceptron.table_sizes,
            paper.flp.perceptron.table_sizes
        );
        assert_eq!(cfg.slp.leveling_table, paper.slp.leveling_table);
    }

    #[test]
    fn drop_feature_params_shrink_tables() {
        let p = TlpParams {
            drop_feature: Some(0),
            ..TlpParams::paper()
        };
        let cfg = p.build_config();
        assert_eq!(cfg.flp.perceptron.enabled_count(), 4);
        assert!(p.label().contains("-f0"));
    }

    #[test]
    fn custom_keys_distinguish_params() {
        let a = Scheme::TlpCustom(TlpParams::paper());
        let b = Scheme::TlpCustom(TlpParams {
            tau_high: 99,
            ..TlpParams::paper()
        });
        assert_ne!(a.key(), b.key());
        assert_eq!(a.name(), "TLP*");
    }

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<String> = vec![
            Scheme::Baseline,
            Scheme::Ppf,
            Scheme::Hermes,
            Scheme::HermesPpf,
            Scheme::Tlp,
            Scheme::HermesExtra,
            Scheme::AthenaRl,
        ]
        .into_iter()
        .map(Scheme::key)
        .collect();
        keys.extend(TlpVariant::ALL.iter().map(|v| Scheme::Variant(*v).key()));
        let set: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn l1pf_names_are_unique() {
        let all = [
            L1Pf::None,
            L1Pf::Ipcp,
            L1Pf::Berti,
            L1Pf::IpcpExtra,
            L1Pf::BertiExtra,
            L1Pf::NextLine,
            L1Pf::Stride,
        ];
        let set: std::collections::HashSet<&str> = all.iter().map(|p| p.name()).collect();
        assert_eq!(set.len(), all.len());
    }
}
