//! `tlp-harness`: the experiment harness that regenerates every table and
//! figure of the TLP paper (HPCA 2024).
//!
//! The harness composes the workspace: workloads from `tlp-trace`, the
//! simulator from `tlp-sim`, prefetchers from `tlp-prefetch`, baselines
//! from `tlp-baselines`, and the TLP predictor from `tlp-core`. Each
//! experiment module in [`experiments`] produces an [`report::ExperimentResult`]
//! containing the same rows/series the paper plots; `tlp-repro` (the CLI)
//! renders them as text tables.
//!
//! # Example
//!
//! ```no_run
//! use tlp_harness::{Harness, RunConfig};
//!
//! let h = Harness::new(RunConfig::quick());
//! let result = tlp_harness::experiments::fig10::run(&h, tlp_harness::L1Pf::Ipcp);
//! println!("{}", result.render());
//! ```

pub mod cache;
pub mod experiments;
pub mod mix;
pub mod plugins;
pub mod profile;
pub mod report;
pub mod runner;
pub mod scheme;
pub mod session;
pub mod timeline;
pub mod tracetier;

pub use cache::{EngineStats, RunKey};
pub use plugins::builtin_registry;
pub use runner::{Harness, RunCell, RunConfig, SimPointRun};
pub use scheme::{L1Pf, Scheme, TlpParams};
pub use session::{scheme_result, Session, SessionError};
pub use timeline::TimelineRun;
pub use tlp_sim::{EngineMode, TimelineConfig};
pub use tracetier::TraceTierStats;
