//! The `--timeline` export: simulated-time telemetry rendered for
//! humans and tools.
//!
//! [`capture_runs`] re-simulates each requested cell with a
//! [`tlp_timeline::Recorder`] attached (through the blob cache in
//! [`crate::cache`], so warm re-runs are file reads) and the renderers
//! here turn the captured [`Timeline`]s into:
//!
//! - **Chrome trace-event JSON** ([`chrome_trace_value`]) — loadable in
//!   Perfetto / `chrome://tracing`. Windows become counter tracks
//!   (`"ph":"C"`; IPC, MPKI, prefetch accuracy/coverage, off-chip
//!   precision/recall, DRAM bandwidth/row-hit, ROB/MSHR occupancy, all
//!   in integer milli-units) and sampled request journeys become async
//!   slices (`"b"`/`"n"`/`"e"`) with one instant per pipeline stage.
//!   One simulated cycle renders as one microsecond of trace time.
//! - **CSV** ([`windows_csv`]) — one row per window per run, prefixed
//!   with the run's workload/scheme/prefetcher identity.
//!
//! Everything is derived from simulated state only and rendered through
//! the integer-only [`tlp_sim::serial`] codec, so the exported bytes are
//! identical across engine modes, thread counts, and cache temperature
//! (pinned by `tests/timeline.rs`).

use std::path::Path;
use std::sync::Arc;

use tlp_sim::serial::Value;
use tlp_sim::{Timeline, TimelineConfig};
use tlp_trace::emit::Workload;

use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

/// One captured cell: identity plus its telemetry.
#[derive(Clone)]
pub struct TimelineRun {
    /// Workload name (catalog key).
    pub workload: String,
    /// Scheme name.
    pub scheme: String,
    /// L1D prefetcher name.
    pub l1pf: String,
    /// The captured telemetry.
    pub timeline: Arc<Timeline>,
}

/// Captures timelines for `workloads` under one scheme/prefetcher pair,
/// through the harness's blob cache.
#[must_use]
pub fn capture_runs(
    harness: &Harness,
    workloads: &[Arc<dyn Workload>],
    scheme: Scheme,
    l1pf: L1Pf,
    tcfg: TimelineConfig,
) -> Vec<TimelineRun> {
    workloads
        .iter()
        .map(|w| TimelineRun {
            workload: w.name().to_owned(),
            scheme: scheme.name().to_owned(),
            l1pf: l1pf.name().to_owned(),
            timeline: harness.timeline_single(w, scheme, l1pf, tcfg),
        })
        .collect()
}

/// A compact summary of captured runs — embedded into the `--profile`
/// artifact (schema 2) when `--timeline` is active.
#[must_use]
pub fn summary_value(runs: &[TimelineRun]) -> Value {
    let items = runs
        .iter()
        .map(|r| {
            let t = &r.timeline;
            Value::Obj(vec![
                ("workload".to_owned(), Value::Str(r.workload.clone())),
                ("scheme".to_owned(), Value::Str(r.scheme.clone())),
                ("l1pf".to_owned(), Value::Str(r.l1pf.clone())),
                ("windows".to_owned(), Value::Num(t.windows.len() as u64)),
                ("journeys".to_owned(), Value::Num(t.journeys.len() as u64)),
                ("windows_dropped".to_owned(), Value::Num(t.windows_dropped)),
                (
                    "journeys_dropped".to_owned(),
                    Value::Num(t.journeys_dropped),
                ),
                ("start_cycle".to_owned(), Value::Num(t.start_cycle)),
                ("end_cycle".to_owned(), Value::Num(t.end_cycle)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("runs".to_owned(), Value::Arr(items)),
        (
            "total_windows".to_owned(),
            Value::Num(runs.iter().map(|r| r.timeline.windows.len() as u64).sum()),
        ),
        (
            "total_journeys".to_owned(),
            Value::Num(runs.iter().map(|r| r.timeline.journeys.len() as u64).sum()),
        ),
    ])
}

/// One trace event. `id` is `Some` for async journey events, `None` for
/// counter/metadata events; string args and numeric args are separate
/// because the serial codec has no heterogeneous maps.
#[allow(clippy::too_many_arguments)] // flat mirror of the trace-event fields
fn event(
    ph: &str,
    name: &str,
    pid: u64,
    tid: u64,
    ts: u64,
    id: Option<u64>,
    str_args: &[(&str, &str)],
    num_args: &[(&str, u64)],
) -> Value {
    let mut fields = vec![
        ("ph".to_owned(), Value::Str(ph.to_owned())),
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("pid".to_owned(), Value::Num(pid)),
        ("tid".to_owned(), Value::Num(tid)),
        ("ts".to_owned(), Value::Num(ts)),
    ];
    if let Some(id) = id {
        fields.push(("cat".to_owned(), Value::Str("journey".to_owned())));
        fields.push(("id".to_owned(), Value::Num(id)));
    }
    if !str_args.is_empty() || !num_args.is_empty() {
        let mut args = Vec::with_capacity(str_args.len() + num_args.len());
        for (k, v) in str_args {
            args.push(((*k).to_owned(), Value::Str((*v).to_owned())));
        }
        for (k, v) in num_args {
            args.push(((*k).to_owned(), Value::Num(*v)));
        }
        fields.push(("args".to_owned(), Value::Obj(args)));
    }
    Value::Obj(fields)
}

/// Human name of a served level code (see
/// [`tlp_timeline::JourneyRecord::served_level`]).
fn served_name(code: u64) -> &'static str {
    match code {
        0 => "l1d",
        1 => "l2",
        2 => "llc",
        3 => "dram",
        _ => "in-flight",
    }
}

/// Renders captured runs as a Chrome trace-event object
/// (`{"traceEvents": [...]}`): one trace "process" per run, counter
/// tracks from the windows, async slices from the journeys.
#[must_use]
pub fn chrome_trace_value(runs: &[TimelineRun]) -> Value {
    let mut events = Vec::new();
    let mut next_id: u64 = 0;
    for (p, run) in runs.iter().enumerate() {
        let pid = p as u64;
        let label = format!("{} / {} / {}", run.workload, run.scheme, run.l1pf);
        events.push(event(
            "M",
            "process_name",
            pid,
            0,
            0,
            None,
            &[("name", &label)],
            &[],
        ));
        for w in &run.timeline.windows {
            let ts = w.end_cycle;
            events.push(event(
                "C",
                "ipc",
                pid,
                0,
                ts,
                None,
                &[],
                &[("ipc_milli", w.ipc_milli())],
            ));
            events.push(event(
                "C",
                "mpki",
                pid,
                0,
                ts,
                None,
                &[],
                &[
                    ("l1d_milli", w.l1d_mpki_milli()),
                    ("l2_milli", w.l2_mpki_milli()),
                    ("llc_milli", w.llc_mpki_milli()),
                ],
            ));
            events.push(event(
                "C",
                "prefetch",
                pid,
                0,
                ts,
                None,
                &[],
                &[
                    ("accuracy_milli", w.pf_accuracy_milli()),
                    ("coverage_milli", w.pf_coverage_milli()),
                    ("filter_drop_milli", w.filter_drop_milli()),
                ],
            ));
            events.push(event(
                "C",
                "offchip",
                pid,
                0,
                ts,
                None,
                &[],
                &[
                    ("precision_milli", w.offchip_precision_milli()),
                    ("recall_milli", w.offchip_recall_milli()),
                ],
            ));
            events.push(event(
                "C",
                "dram",
                pid,
                0,
                ts,
                None,
                &[],
                &[
                    ("read_bw_milli", w.dram_read_bw_milli()),
                    ("row_hit_milli", w.dram_row_hit_milli()),
                ],
            ));
            events.push(event(
                "C",
                "occupancy",
                pid,
                0,
                ts,
                None,
                &[],
                &[("rob", w.rob_occupancy), ("mshr", w.mshr_occupancy)],
            ));
        }
        for j in &run.timeline.journeys {
            let id = next_id;
            next_id += 1;
            let name = format!("load@{:#x}", j.pc);
            events.push(event(
                "b",
                &name,
                pid,
                j.core,
                j.dispatch,
                Some(id),
                &[("served", served_name(j.served_level))],
                &[
                    ("ordinal", j.ordinal),
                    ("pc", j.pc),
                    ("vaddr", j.vaddr),
                    ("offchip_decision", j.offchip_decision),
                    ("offchip_valid", j.offchip_valid),
                    ("filter_seen", j.filter_seen),
                ],
            ));
            let mut last = j.dispatch;
            for (stage, at) in [
                ("l1_lookup", j.l1_at),
                ("l2_lookup", j.l2_at),
                ("dram_queue", j.dram_queue_at),
                ("bank_service", j.bank_at),
                ("fill", j.fill_at),
            ] {
                if at == 0 {
                    continue;
                }
                last = last.max(at);
                events.push(event("n", stage, pid, j.core, at, Some(id), &[], &[]));
            }
            events.push(event("e", &name, pid, j.core, last, Some(id), &[], &[]));
        }
    }
    Value::Obj(vec![
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        ("traceEvents".to_owned(), Value::Arr(events)),
    ])
}

/// Validates Chrome-trace text written by [`write_timeline_files`]: it
/// must parse under the serial codec and every event must carry the
/// mandatory `ph`/`ts`/`pid` fields. Returns the event count.
///
/// # Errors
///
/// Returns a description of the first malformation found.
pub fn check_chrome_trace(text: &str) -> Result<usize, String> {
    let v = tlp_sim::serial::parse_value(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = v
        .arr_field("traceEvents")
        .map_err(|e| format!("no traceEvents array: {e}"))?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_owned());
    }
    for (i, ev) in events.iter().enumerate() {
        for key in ["ph", "ts", "pid"] {
            if ev.field(key).is_err() {
                return Err(format!("event {i} lacks required field '{key}'"));
            }
        }
    }
    Ok(events.len())
}

/// Renders captured runs as CSV: the window table of every run (see
/// [`Timeline::windows_csv`]) prefixed with identity columns.
#[must_use]
pub fn windows_csv(runs: &[TimelineRun]) -> String {
    let mut out = String::from("workload,scheme,l1pf,");
    out.push_str(
        Timeline::default()
            .windows_csv()
            .lines()
            .next()
            .unwrap_or(""),
    );
    out.push('\n');
    for run in runs {
        let body = run.timeline.windows_csv();
        for line in body.lines().skip(1) {
            out.push_str(&run.workload);
            out.push(',');
            out.push_str(&run.scheme);
            out.push(',');
            out.push_str(&run.l1pf);
            out.push(',');
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Writes the Chrome trace to `path` and the window CSV to
/// `path` + `.csv`.
///
/// # Errors
///
/// Returns the underlying I/O error when either file cannot be written.
pub fn write_timeline_files(path: &Path, runs: &[TimelineRun]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_value(runs).render())?;
    let mut csv_path = path.as_os_str().to_owned();
    csv_path.push(".csv");
    std::fs::write(csv_path, windows_csv(runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_timeline::{Counters, JourneyRecord, WindowSample};

    fn run_fixture() -> TimelineRun {
        let mut t = Timeline {
            window_cycles: 100,
            journey_every: 4,
            start_cycle: 0,
            end_cycle: 200,
            ..Timeline::default()
        };
        t.windows.push(WindowSample {
            start_cycle: 0,
            end_cycle: 100,
            counters: Counters {
                instructions: 400,
                l1d_misses: 10,
                dram_reads: 5,
                dram_row_hits: 3,
                dram_row_conflicts: 1,
                ..Counters::default()
            },
            rob_occupancy: 50,
            mshr_occupancy: 4,
        });
        t.journeys.push(JourneyRecord {
            core: 0,
            ordinal: 0,
            pc: 0x400_100,
            vaddr: 0xdead_b000,
            dispatch: 10,
            l1_at: 12,
            l2_at: 20,
            dram_queue_at: 40,
            bank_at: 55,
            fill_at: 90,
            offchip_decision: 2,
            offchip_valid: 1,
            filter_seen: 0,
            served_level: 3,
        });
        TimelineRun {
            workload: "bfs.urand".to_owned(),
            scheme: "tlp".to_owned(),
            l1pf: "ipcp".to_owned(),
            timeline: Arc::new(t),
        }
    }

    #[test]
    fn chrome_trace_passes_its_own_validator() {
        let text = chrome_trace_value(&[run_fixture()]).render();
        let n = check_chrome_trace(&text).expect("valid trace");
        // 1 metadata + 6 counters + 1 begin + 5 instants + 1 end.
        assert_eq!(n, 14);
    }

    #[test]
    fn journeys_render_as_matched_async_slices() {
        let text = chrome_trace_value(&[run_fixture()]).render();
        let v = tlp_sim::serial::parse_value(&text).unwrap();
        let events = v.arr_field("traceEvents").unwrap();
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.str_field("ph").as_deref() == Ok("b"))
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.str_field("ph").as_deref() == Ok("e"))
            .collect();
        assert_eq!(begins.len(), 1);
        assert_eq!(ends.len(), 1);
        assert_eq!(
            begins[0].u64_field("id").unwrap(),
            ends[0].u64_field("id").unwrap()
        );
        // The slice closes at the last stamp (the fill).
        assert_eq!(ends[0].u64_field("ts").unwrap(), 90);
        let args = begins[0].field("args").unwrap();
        assert_eq!(args.str_field("served").unwrap(), "dram");
        assert_eq!(args.u64_field("offchip_decision").unwrap(), 2);
    }

    #[test]
    fn empty_trace_fails_validation() {
        let text = chrome_trace_value(&[]).render();
        assert!(check_chrome_trace(&text).is_err());
        assert!(check_chrome_trace("{}").is_err());
        assert!(check_chrome_trace("not json").is_err());
    }

    #[test]
    fn csv_prefixes_identity_columns() {
        let csv = windows_csv(&[run_fixture()]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("workload,scheme,l1pf,start_cycle,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("bfs.urand,tlp,ipcp,0,100,"));
        let (h, r) = (header.split(',').count(), row.split(',').count());
        assert_eq!(h, r, "every row matches the header arity");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn summary_counts_windows_and_journeys() {
        let s = summary_value(&[run_fixture()]);
        assert_eq!(s.u64_field("total_windows").unwrap(), 1);
        assert_eq!(s.u64_field("total_journeys").unwrap(), 1);
        let runs = s.arr_field("runs").unwrap();
        assert_eq!(runs[0].str_field("workload").unwrap(), "bfs.urand");
        assert_eq!(runs[0].u64_field("windows").unwrap(), 1);
    }
}
