//! Figure 14: multi-core increase in DRAM transactions for each scheme
//! over the baseline — the bandwidth story behind Figure 13.

use crate::mix::generate_mixes;
use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{mean_summaries, pct_delta, plan_mix_cells};

/// Runs the experiment for one L1D prefetcher.
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("fig14-{}", l1pf.name()),
        format!("4-core ΔDRAM transactions ({})", l1pf.name()),
        "% vs baseline (lower is better)",
    );
    let schemes = Scheme::HEADLINE;
    let columns: Vec<String> = schemes.iter().map(|s| s.name().to_string()).collect();
    let mixes = generate_mixes(&h.active_workloads(), h.rc.mixes_per_suite / 2 + 1);
    plan_mix_cells(h, &mixes, &schemes, l1pf, None, None);
    let tagged: Vec<_> = mixes
        .iter()
        .map(|m| {
            let base = h
                .run_mix(&m.workloads, Scheme::Baseline, l1pf, None)
                .dram_transactions() as f64;
            let values: Vec<(String, f64)> = schemes
                .iter()
                .map(|&s| {
                    let t = h.run_mix(&m.workloads, s, l1pf, None).dram_transactions() as f64;
                    (s.name().to_string(), pct_delta(t, base))
                })
                .collect();
            (m.suite, Row::new(m.name.clone(), values))
        })
        .collect();
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
