//! Extension E7: the Athena-class online-RL coordination baseline.
//!
//! Two tables:
//!
//! * [`run`] — a head-to-head of Baseline / Hermes / TLP / AthenaRl over
//!   the single-core catalog (IPCP at L1D): geomean speedup, mean ΔDRAM
//!   transactions, and the precision of issued speculative requests.
//! * [`run_learning_curve`] — the online-learning trajectory: one shared
//!   agent simulated for [`EPOCHS`] consecutive epochs of the same
//!   workload (the Q-tables, pressure EWMAs, and exploration schedule
//!   persist across epochs while the architectural state restarts), with
//!   issue accuracy, issue rate, and IPC per epoch. A supervised predictor
//!   is near-stationary here; an RL agent's accuracy climbs as ε decays
//!   and the Q-values sharpen.

use std::sync::Arc;

use tlp_rl::{shared_agent, RlConfig, SharedAgent};
use tlp_sim::engine::System;
use tlp_sim::types::Level;
use tlp_sim::{SimReport, SystemConfig};
use tlp_trace::emit::Workload;

use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, mean, Harness};
use crate::scheme::{L1Pf, Scheme};

use super::{pct_delta, sweep_single_core};

/// The schemes compared against the baseline.
pub const SCHEMES: [Scheme; 3] = [Scheme::Hermes, Scheme::Tlp, Scheme::AthenaRl];

/// Epochs of the learning-curve table.
pub const EPOCHS: usize = 5;

/// Runs the head-to-head.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext07",
        "Online-RL coordination (AthenaRl) vs Baseline / Hermes / TLP (IPCP)",
        "% (speedup geomean / ΔDRAM mean / precision)",
    );
    let data = sweep_single_core(h, &SCHEMES, L1Pf::Ipcp);
    // Index 0 of each report vector is the baseline; emit it as an explicit
    // zero row so the table shows all four systems.
    let names = std::iter::once(Scheme::Baseline)
        .chain(SCHEMES)
        .map(Scheme::name);
    for (i, name) in names.enumerate() {
        let mut speedups = Vec::new();
        let mut deltas = Vec::new();
        let mut precisions = Vec::new();
        for (_, reports) in &data {
            let base = &reports[0];
            let r = &reports[i];
            speedups.push(pct_delta(r.ipc(), base.ipc()));
            deltas.push(pct_delta(
                r.dram_transactions() as f64,
                base.dram_transactions() as f64,
            ));
            precisions.push(r.cores[0].offchip.issue_accuracy() * 100.0);
        }
        result.rows.push(Row::new(
            name,
            vec![
                ("speedup".into(), geomean_speedup_percent(&speedups)),
                ("ΔDRAM".into(), mean(&deltas)),
                ("precision".into(), mean(&precisions)),
            ],
        ));
    }
    result
}

/// One epoch: a fresh system (same wiring as [`Scheme::AthenaRl`]) around
/// the persistent agent.
fn run_epoch(h: &Harness, w: &Arc<dyn Workload>, agent: &SharedAgent) -> SimReport {
    let setup = Scheme::athena_rl_setup(h.trace_for(w), L1Pf::Ipcp, agent.clone());
    let mut sys =
        System::new(SystemConfig::cascade_lake(1), vec![setup]).with_engine_mode(h.rc.engine);
    sys.run(h.rc.warmup, h.rc.instructions)
}

/// Runs the learning curve on the first active workload.
///
/// The epochs are a stateful sequence (the agent persists across them),
/// so they go through [`Harness::run_sequence`]: all-or-nothing cached,
/// keyed per epoch, and re-simulated as a whole when any epoch is cold.
#[must_use]
pub fn run_learning_curve(h: &Harness) -> ExperimentResult {
    let w = h.active_workloads()[0].clone();
    let mut result = ExperimentResult::new(
        "ext07lc",
        format!("AthenaRl learning curve on {} (persistent agent)", w.name()),
        "issue acc % / issued per kilo-load / IPC",
    );
    let keys: Vec<_> = (1..=EPOCHS)
        .map(|e| h.sequence_key(&w, Scheme::AthenaRl, L1Pf::Ipcp, &format!("lc-epoch{e}")))
        .collect();
    let reports = h.run_sequence(&keys, || {
        let agent = shared_agent(RlConfig::default_config());
        (1..=EPOCHS).map(|_| run_epoch(h, &w, &agent)).collect()
    });
    for (epoch, r) in (1..=EPOCHS).zip(&reports) {
        let oc = &r.cores[0].offchip;
        let issued: u64 = oc.issued_outcome.iter().sum();
        let correct = oc.issued_outcome[Level::Dram.index()];
        let loads = r.cores[0].core.loads.max(1);
        result.rows.push(Row::new(
            format!("epoch {epoch}"),
            vec![
                (
                    "issue acc".into(),
                    if issued == 0 {
                        0.0
                    } else {
                        correct as f64 * 100.0 / issued as f64
                    },
                ),
                ("issued/kld".into(), issued as f64 * 1000.0 / loads as f64),
                ("IPC".into(), r.ipc()),
            ],
        ));
    }
    let col_mean = |col: &str| {
        mean(
            &result
                .rows
                .iter()
                .filter_map(|r| r.get(col))
                .collect::<Vec<_>>(),
        )
    };
    result.summary.push(Row::new(
        "mean",
        vec![
            ("issue acc".into(), col_mean("issue acc")),
            ("issued/kld".into(), col_mean("issued/kld")),
            ("IPC".into(), col_mean("IPC")),
        ],
    ));
    result
}
