//! Figure 17: designs enhanced with TLP's 7 KB storage budget — enlarged
//! IPCP/Berti and enlarged Hermes versus TLP, single-core and 4-core.

use crate::mix::generate_mixes;
use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, Harness};
use crate::scheme::{L1Pf, Scheme};

use super::fig13::SINGLE_GBPS;
use super::{pct_delta, sweep_single_core};

/// Runs the experiment for one base L1D prefetcher (`Ipcp` or `Berti`).
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let (extra_pf, pf_label) = match l1pf {
        L1Pf::Berti => (L1Pf::BertiExtra, "Berti+7KB"),
        _ => (L1Pf::IpcpExtra, "IPCP+7KB"),
    };
    let mut result = ExperimentResult::new(
        format!("fig17-{}", l1pf.name()),
        format!(
            "Designs enhanced with TLP's storage budget ({})",
            l1pf.name()
        ),
        "% geomean speedup over baseline",
    );

    // Single-core: baseline+bigger-prefetcher, Hermes+7KB, TLP.
    let data = sweep_single_core(h, &[Scheme::HermesExtra, Scheme::Tlp], l1pf);
    let big_pf = sweep_single_core(h, &[], extra_pf);
    let mut pf_sp = Vec::new();
    let mut hermes_sp = Vec::new();
    let mut tlp_sp = Vec::new();
    for ((w, reports), (_, big)) in data.iter().zip(&big_pf) {
        let base = reports[0].ipc();
        pf_sp.push(pct_delta(big[0].ipc(), base));
        hermes_sp.push(pct_delta(reports[1].ipc(), base));
        tlp_sp.push(pct_delta(reports[2].ipc(), base));
        let _ = w;
    }
    result.rows.push(Row::new(
        "single-core",
        vec![
            (pf_label.to_string(), geomean_speedup_percent(&pf_sp)),
            ("Hermes+7KB".into(), geomean_speedup_percent(&hermes_sp)),
            ("TLP".into(), geomean_speedup_percent(&tlp_sp)),
        ],
    ));

    // Multi-core. The enhanced designs vary the prefetcher as well as the
    // scheme, so the cell grid is planned explicitly.
    let mixes = generate_mixes(&h.active_workloads(), h.rc.mixes_per_suite / 2 + 1);
    let grid: [(Scheme, L1Pf); 4] = [
        (Scheme::Baseline, l1pf),
        (Scheme::Baseline, extra_pf),
        (Scheme::HermesExtra, l1pf),
        (Scheme::Tlp, l1pf),
    ];
    let mut cells = Vec::new();
    for m in &mixes {
        for &(scheme, pf) in &grid {
            cells.push(h.cell_mix(&m.workloads, scheme, pf, None));
            for w in &m.workloads {
                cells.push(h.cell_single(w, scheme, pf, Some(SINGLE_GBPS)));
            }
        }
    }
    h.run_cells(cells);
    let per_mix: Vec<_> = mixes
        .iter()
        .map(|m| {
            let base = h.run_mix(&m.workloads, Scheme::Baseline, l1pf, None);
            let base_ws = h.weighted_ipc(&m.workloads, &base, Scheme::Baseline, l1pf, SINGLE_GBPS);
            let ws_of = |scheme: Scheme, pf: L1Pf| {
                let r = h.run_mix(&m.workloads, scheme, pf, None);
                let ws = h.weighted_ipc(&m.workloads, &r, scheme, pf, SINGLE_GBPS);
                pct_delta(ws, base_ws)
            };
            (
                ws_of(Scheme::Baseline, extra_pf),
                ws_of(Scheme::HermesExtra, l1pf),
                ws_of(Scheme::Tlp, l1pf),
            )
        })
        .collect();
    let col = |f: fn(&(f64, f64, f64)) -> f64| -> Vec<f64> { per_mix.iter().map(f).collect() };
    result.rows.push(Row::new(
        "multi-core",
        vec![
            (pf_label.to_string(), geomean_speedup_percent(&col(|t| t.0))),
            ("Hermes+7KB".into(), geomean_speedup_percent(&col(|t| t.1))),
            ("TLP".into(), geomean_speedup_percent(&col(|t| t.2))),
        ],
    ));
    result
}
