//! Extension E4: drop-one-feature ablation.
//!
//! §IV-A reports that "the features used in the original Hermes work
//! provide good predictions and adding more features provides marginal
//! benefits", but no per-feature breakdown. This experiment removes each
//! Table-I base feature in turn from both FLP and SLP, and reports geomean
//! speedup, mean ΔDRAM and the L1D prefetcher accuracy under each masked
//! configuration.

use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, mean, Harness};
use crate::scheme::{L1Pf, Scheme, TlpParams};

use super::{pct_delta, sweep_single_core};

/// Table I feature names, in feature-index order.
pub const FEATURE_NAMES: [&str; 5] = [
    "PC⊕line-offset",
    "PC⊕byte-offset",
    "PC+first-access",
    "offset+first-access",
    "last-4 PCs",
];

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext04",
        "Drop-one-feature ablation of the Table-I features (IPCP)",
        "% (speedup geomean / ΔDRAM mean / L1D pf accuracy mean)",
    );
    let mut schemes = vec![Scheme::TlpCustom(TlpParams::paper())];
    for f in 0..FEATURE_NAMES.len() {
        schemes.push(Scheme::TlpCustom(TlpParams {
            drop_feature: Some(f as u8),
            ..TlpParams::paper()
        }));
    }
    let data = sweep_single_core(h, &schemes, L1Pf::Ipcp);
    let mut labels = vec!["all features".to_owned()];
    labels.extend(FEATURE_NAMES.iter().map(|n| format!("w/o {n}")));
    for (i, label) in labels.into_iter().enumerate() {
        let mut speedups = Vec::new();
        let mut deltas = Vec::new();
        let mut accs = Vec::new();
        for (_, reports) in &data {
            let base = &reports[0];
            let r = &reports[i + 1];
            speedups.push(pct_delta(r.ipc(), base.ipc()));
            deltas.push(pct_delta(
                r.dram_transactions() as f64,
                base.dram_transactions() as f64,
            ));
            accs.push(r.cores[0].l1_prefetch.accuracy() * 100.0);
        }
        result.rows.push(Row::new(
            label,
            vec![
                ("speedup".into(), geomean_speedup_percent(&speedups)),
                ("ΔDRAM".into(), mean(&deltas)),
                ("pf acc".into(), mean(&accs)),
            ],
        ));
    }
    result
}
