//! Tables II–V: storage accounting, system configuration, and the GAP
//! kernel/graph inventory.

use tlp_core::storage::storage_report;
use tlp_core::TlpConfig;
use tlp_sim::SystemConfig;
use tlp_trace::catalog::Scale;
use tlp_trace::gap::{Graph, GraphKind, GraphScale, Kernel};

use crate::report::{ExperimentResult, Row};

/// Table II: the TLP storage budget.
#[must_use]
pub fn table2() -> ExperimentResult {
    let mut result = ExperimentResult::new("table2", "Storage overhead of TLP", "KB");
    let r = storage_report(&TlpConfig::paper());
    let kb = |bits: usize| bits as f64 / 8.0 / 1024.0;
    result.rows = vec![
        Row::new(
            "FLP",
            vec![
                ("weights".into(), kb(r.flp_weights_bits)),
                ("page buffer".into(), kb(r.flp_page_buffer_bits)),
                ("subtotal".into(), r.flp_kb()),
            ],
        ),
        Row::new(
            "SLP",
            vec![
                ("weights".into(), kb(r.slp_weights_bits)),
                ("page buffer".into(), kb(r.slp_page_buffer_bits)),
                ("subtotal".into(), r.slp_kb()),
            ],
        ),
        Row::new(
            "LQ metadata",
            vec![("subtotal".into(), kb(r.lq_metadata_bits))],
        ),
        Row::new(
            "L1D MSHR metadata",
            vec![("subtotal".into(), kb(r.mshr_metadata_bits))],
        ),
    ];
    result
        .summary
        .push(Row::new("Total", vec![("KB".into(), r.total_kb())]));
    result
}

/// Table III: the simulated system configuration (headline numbers).
#[must_use]
pub fn table3() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "table3",
        "System configuration (Cascade Lake-like)",
        "various",
    );
    let c1 = SystemConfig::cascade_lake(1);
    let c4 = SystemConfig::cascade_lake(4);
    result.rows = vec![
        Row::new(
            "core",
            vec![
                ("width".into(), c1.core.fetch_width as f64),
                ("ROB".into(), c1.core.rob as f64),
                ("LQ".into(), c1.core.load_queue as f64),
                ("SQ".into(), c1.core.store_queue as f64),
            ],
        ),
        Row::new(
            "L1D KB",
            vec![
                ("size".into(), c1.l1d.capacity_bytes() as f64 / 1024.0),
                ("ways".into(), c1.l1d.ways as f64),
                ("latency".into(), c1.l1d.latency as f64),
                ("mshr".into(), c1.l1d.mshrs as f64),
            ],
        ),
        Row::new(
            "L2 KB",
            vec![
                ("size".into(), c1.l2.capacity_bytes() as f64 / 1024.0),
                ("ways".into(), c1.l2.ways as f64),
                ("latency".into(), c1.l2.latency as f64),
                ("mshr".into(), c1.l2.mshrs as f64),
            ],
        ),
        Row::new(
            "LLC KB (1c)",
            vec![
                ("size".into(), c1.llc.capacity_bytes() as f64 / 1024.0),
                ("ways".into(), c1.llc.ways as f64),
                ("latency".into(), c1.llc.latency as f64),
            ],
        ),
        Row::new(
            "LLC KB (4c)",
            vec![
                ("size".into(), c4.llc.capacity_bytes() as f64 / 1024.0),
                ("ways".into(), c4.llc.ways as f64),
                ("latency".into(), c4.llc.latency as f64),
            ],
        ),
        Row::new(
            "DRAM",
            vec![
                ("GB/s (1c)".into(), c1.dram.bus_gbps),
                ("GB/s (4c)".into(), c4.dram.bus_gbps),
                ("tCAS".into(), c1.dram.t_cas as f64),
                ("banks".into(), c1.dram.banks as f64),
            ],
        ),
    ];
    result
}

/// Tables IV & V: the GAP kernels and (scaled) input graphs actually built.
#[must_use]
pub fn table45(scale: Scale) -> ExperimentResult {
    let gscale = match scale {
        Scale::Tiny => GraphScale::Tiny,
        Scale::Quick => GraphScale::Quick,
        Scale::Full => GraphScale::Full,
    };
    let mut result = ExperimentResult::new(
        "table45",
        "GAP kernels and input graphs (scaled reproduction)",
        "counts",
    );
    for kind in GraphKind::ALL {
        let g = Graph::build(kind, gscale, tlp_trace::catalog::GRAPH_SEED);
        let n = g.num_vertices();
        let max_deg = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
        result.rows.push(Row::new(
            kind.name(),
            vec![
                ("vertices".into(), f64::from(n)),
                ("edges".into(), g.num_edges() as f64 / 2.0),
                ("avg deg".into(), g.num_edges() as f64 / f64::from(n)),
                ("max deg".into(), f64::from(max_deg)),
            ],
        ));
    }
    result.summary.push(Row::new(
        "kernels",
        vec![("count".into(), Kernel::ALL.len() as f64)],
    ));
    result
}
