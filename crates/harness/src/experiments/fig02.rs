//! Figure 2: increase in DRAM transactions due to Hermes off-chip
//! predictions, single-core, relative to the no-off-chip baseline.

use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{mean_summaries, pct_delta, sweep_single_core};

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig02",
        "Increase in DRAM transactions due to Hermes (single-core)",
        "% vs baseline (lower is better)",
    );
    let columns = vec!["Hermes".to_string()];
    let data = sweep_single_core(h, &[Scheme::Hermes], L1Pf::Ipcp);
    let mut tagged = Vec::new();
    for (w, reports) in &data {
        let base = reports[0].dram_transactions() as f64;
        let hermes = reports[1].dram_transactions() as f64;
        tagged.push((
            w.suite(),
            Row::new(w.name(), vec![("Hermes".into(), pct_delta(hermes, base))]),
        ));
    }
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
