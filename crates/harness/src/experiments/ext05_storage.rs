//! Extension E5: storage-budget sensitivity.
//!
//! TLP's headline hardware cost is 7 KB (Table II). This experiment
//! resizes every weight table by ¼× to 4× and reports the resulting total
//! storage alongside geomean speedup and mean ΔDRAM — answering "how much
//! of TLP's benefit survives at half the budget, and does doubling it pay?"

use crate::report::{ExperimentResult, Row};
use crate::scheme::{L1Pf, Scheme, TlpParams};
use crate::Harness;

use super::speedup_and_dram;

/// The sweep points as `(num, den)` resize factors.
pub const FACTORS: [(u8, u8); 5] = [(1, 4), (1, 2), (1, 1), (2, 1), (4, 1)];

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext05",
        "Storage-budget sensitivity: weight tables ¼×–4× (IPCP)",
        "KB / % (speedup geomean, ΔDRAM mean)",
    );
    let params: Vec<TlpParams> = FACTORS
        .iter()
        .map(|&resize| TlpParams {
            resize,
            ..TlpParams::paper()
        })
        .collect();
    let schemes: Vec<Scheme> = params.iter().map(|&p| Scheme::TlpCustom(p)).collect();
    let summary = speedup_and_dram(h, &schemes, L1Pf::Ipcp);
    for (p, (speedup, ddram)) in params.iter().zip(summary) {
        let kb = tlp_core::storage::storage_report(&p.build_config()).total_kb();
        result.rows.push(Row::new(
            format!("×{}/{}", p.resize.0, p.resize.1),
            vec![
                ("storage KB".into(), kb),
                ("speedup".into(), speedup),
                ("ΔDRAM".into(), ddram),
            ],
        ));
    }
    result
}
