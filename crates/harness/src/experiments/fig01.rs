//! Figure 1: MPKI of all caches (L1D, L2C, LLC) across SPEC and GAP, on
//! the baseline system (IPCP at L1D, SPP at L2).

use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{mean_summaries, sweep_single_core};

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig01",
        "MPKI of L1D, L2C and LLC on the baseline system",
        "misses per kilo-instruction",
    );
    let columns: Vec<String> = ["L1D", "L2C", "LLC"].map(String::from).to_vec();
    let data = sweep_single_core(h, &[], L1Pf::Ipcp);
    let mut tagged = Vec::new();
    for (w, reports) in &data {
        let r = &reports[0];
        let instr = r.cores[0].core.instructions;
        let row = Row::new(
            w.name(),
            vec![
                ("L1D".into(), r.cores[0].l1d.mpki(instr)),
                ("L2C".into(), r.cores[0].l2.mpki(instr)),
                ("LLC".into(), r.llc.mpki(instr)),
            ],
        );
        tagged.push((w.suite(), row));
    }
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}

/// The baseline scheme used by this figure (exposed for tests).
#[must_use]
pub fn scheme() -> Scheme {
    Scheme::Baseline
}
