//! Extension E1: off-chip predictor head-to-head.
//!
//! The paper compares TLP against Hermes experimentally and dismisses LP
//! (Level Prediction, HPCA 2022) in the related work on architectural
//! grounds: high false-positive rate, large metadata storage, no prefetch
//! handling. This experiment puts all three *strategies* for off-chip
//! prediction on the same workloads:
//!
//! * **Hermes** — perceptron, single activation threshold, issue at core;
//! * **LP** — residency tracking (flat array + metadata cache);
//! * **FLP** — TLP's first level alone (perceptron, no delay);
//! * **TLP** — the full proposal.
//!
//! Reported per scheme: geomean speedup, mean ΔDRAM transactions, the
//! precision of issued speculative requests (fraction truly served from
//! DRAM) and the coverage of true off-chip loads.

use tlp_core::variants::TlpVariant;
use tlp_sim::types::Level;

use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, mean, Harness};
use crate::scheme::{L1Pf, Scheme};

use super::{pct_delta, sweep_single_core};

/// The compared predictors.
pub const SCHEMES: [Scheme; 4] = [
    Scheme::Hermes,
    Scheme::Lp,
    Scheme::Variant(TlpVariant::FlpOnly),
    Scheme::Tlp,
];

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext01",
        "Off-chip predictor head-to-head: Hermes vs LP vs FLP vs TLP (IPCP)",
        "% (speedup geomean / ΔDRAM mean / precision / coverage)",
    );
    let data = sweep_single_core(h, &SCHEMES, L1Pf::Ipcp);
    for (i, s) in SCHEMES.iter().enumerate() {
        let mut speedups = Vec::new();
        let mut deltas = Vec::new();
        let mut precisions = Vec::new();
        let mut coverages = Vec::new();
        for (_, reports) in &data {
            let base = &reports[0];
            let r = &reports[i + 1];
            speedups.push(pct_delta(r.ipc(), base.ipc()));
            deltas.push(pct_delta(
                r.dram_transactions() as f64,
                base.dram_transactions() as f64,
            ));
            let oc = &r.cores[0].offchip;
            precisions.push(oc.issue_accuracy() * 100.0);
            let hits = oc.issued_outcome[Level::Dram.index()];
            let truly_offchip = hits + oc.missed_offchip;
            coverages.push(if truly_offchip == 0 {
                0.0
            } else {
                hits as f64 * 100.0 / truly_offchip as f64
            });
        }
        let label = match s {
            Scheme::Variant(v) => v.name().to_owned(),
            other => other.name().to_owned(),
        };
        result.rows.push(Row::new(
            label,
            vec![
                ("speedup".into(), geomean_speedup_percent(&speedups)),
                ("ΔDRAM".into(), mean(&deltas)),
                ("precision".into(), mean(&precisions)),
                ("coverage".into(), mean(&coverages)),
            ],
        ));
    }
    result
}
