//! Figure 3: increase in DRAM transactions due to Hermes in the 4-core
//! context, across SPEC/GAP mixes.

use crate::mix::generate_mixes;
use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};
use tlp_trace::emit::Suite;

use super::{mean_summaries, pct_delta, plan_mix_cells};

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig03",
        "Increase in DRAM transactions due to Hermes (4-core mixes)",
        "% vs baseline (lower is better)",
    );
    let columns = vec!["Hermes".to_string()];
    let mixes = generate_mixes(&h.active_workloads(), h.rc.mixes_per_suite / 2 + 1);
    plan_mix_cells(h, &mixes, &[Scheme::Hermes], L1Pf::Ipcp, None, None);
    let rows: Vec<_> = mixes
        .iter()
        .map(|m| {
            let base = h.run_mix(&m.workloads, Scheme::Baseline, L1Pf::Ipcp, None);
            let hermes = h.run_mix(&m.workloads, Scheme::Hermes, L1Pf::Ipcp, None);
            let delta = pct_delta(
                hermes.dram_transactions() as f64,
                base.dram_transactions() as f64,
            );
            (
                m.suite,
                Row::new(m.name.clone(), vec![("Hermes".into(), delta)]),
            )
        })
        .collect();
    result.summary = mean_summaries(&rows, &columns);
    result.rows = rows.into_iter().map(|(_, r)| r).collect();
    result
}

/// Suites covered (exposed for tests).
#[must_use]
pub fn suites() -> [Suite; 2] {
    [Suite::Spec, Suite::Gap]
}
