//! Figure 16: DRAM-bandwidth sensitivity — geomean weighted speedup (16a)
//! and average ΔDRAM transactions (16b) of each scheme, as the per-core
//! bandwidth sweeps 1.6 → 25.6 GB/s in the 4-core context.

use crate::mix::generate_mixes;
use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, mean, Harness};
use crate::scheme::{L1Pf, Scheme};

use super::{pct_delta, plan_mix_cells};

/// The sweep points (GB/s per core).
pub const BANDWIDTHS: [f64; 5] = [1.6, 3.2, 6.4, 12.8, 25.6];

/// Runs the experiment. Produces one row per bandwidth point with both the
/// speedup and the DRAM-delta column per scheme.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig16",
        "Impact of DRAM bandwidth (4-core, IPCP): speedup and ΔDRAM",
        "% (speedup geomean / ΔDRAM mean)",
    );
    let l1pf = L1Pf::Ipcp;
    // The four headline schemes plus "Hermes+TLP", which §VI-B2 singles
    // out as winning only when bandwidth is unrealistically abundant.
    let schemes = [
        Scheme::Ppf,
        Scheme::Hermes,
        Scheme::HermesPpf,
        Scheme::Tlp,
        Scheme::HermesTlp,
    ];
    let mixes = generate_mixes(&h.active_workloads(), h.rc.mixes_per_suite / 2 + 1);
    for bw in BANDWIDTHS {
        plan_mix_cells(h, &mixes, &schemes, l1pf, Some(bw), Some(bw * 4.0));
        let per_mix: Vec<_> = mixes
            .iter()
            .map(|m| {
                let base = h.run_mix(&m.workloads, Scheme::Baseline, l1pf, Some(bw));
                let base_ws = h.weighted_ipc(&m.workloads, &base, Scheme::Baseline, l1pf, bw * 4.0);
                let base_txn = base.dram_transactions() as f64;
                let mut speedups = Vec::new();
                let mut deltas = Vec::new();
                for &s in &schemes {
                    let r = h.run_mix(&m.workloads, s, l1pf, Some(bw));
                    let ws = h.weighted_ipc(&m.workloads, &r, s, l1pf, bw * 4.0);
                    speedups.push(pct_delta(ws, base_ws));
                    deltas.push(pct_delta(r.dram_transactions() as f64, base_txn));
                }
                (speedups, deltas)
            })
            .collect();
        let mut values = Vec::new();
        for (i, s) in schemes.iter().enumerate() {
            let sp: Vec<f64> = per_mix.iter().map(|(a, _)| a[i]).collect();
            values.push((
                format!("{} speedup", s.name()),
                geomean_speedup_percent(&sp),
            ));
        }
        for (i, s) in schemes.iter().enumerate() {
            let d: Vec<f64> = per_mix.iter().map(|(_, b)| b[i]).collect();
            values.push((format!("{} ΔDRAM", s.name()), mean(&d)));
        }
        result.rows.push(Row::new(format!("{bw} GB/s"), values));
    }
    result
}
