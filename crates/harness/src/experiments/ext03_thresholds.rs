//! Extension E3: threshold sensitivity.
//!
//! The paper fixes TLP's three thresholds (τ_high, τ_low, τ_pref) without
//! reporting a sweep. This experiment varies each threshold around the
//! operating point while holding the other two at their paper values, and
//! reports geomean speedup and mean ΔDRAM per point. The expected shape:
//!
//! * raising **τ_high** shifts speculative requests from issue-now to the
//!   delayed path — DRAM traffic falls, latency hiding shrinks;
//! * lowering **τ_low** widens off-chip coverage at the cost of precision;
//! * lowering **τ_pref** drops more prefetches — DRAM traffic falls, but
//!   coverage-carrying prefetches start being discarded.

use crate::report::{ExperimentResult, Row};
use crate::scheme::{L1Pf, Scheme, TlpParams};
use crate::Harness;

use super::speedup_and_dram;

/// τ_high sweep points (paper: 14).
pub const TAU_HIGH: [i32; 5] = [6, 10, 14, 18, 24];
/// τ_low sweep points (paper: 2).
pub const TAU_LOW: [i32; 5] = [-2, 0, 2, 6, 10];
/// τ_pref sweep points (paper: 6).
pub const TAU_PREF: [i32; 5] = [0, 3, 6, 12, 24];

fn sweep(
    h: &Harness,
    id: &str,
    title: &str,
    points: &[i32],
    make: impl Fn(i32) -> TlpParams,
) -> ExperimentResult {
    let mut result = ExperimentResult::new(id, title, "% (speedup geomean / ΔDRAM mean)");
    let schemes: Vec<Scheme> = points.iter().map(|&t| Scheme::TlpCustom(make(t))).collect();
    let summary = speedup_and_dram(h, &schemes, L1Pf::Ipcp);
    for (&t, (speedup, ddram)) in points.iter().zip(summary) {
        result.rows.push(Row::new(
            format!("{t}"),
            vec![("speedup".into(), speedup), ("ΔDRAM".into(), ddram)],
        ));
    }
    result
}

/// Sweeps τ_high with τ_low/τ_pref at paper values.
#[must_use]
pub fn run_tau_high(h: &Harness) -> ExperimentResult {
    sweep(
        h,
        "ext03a",
        "τ_high sensitivity (τ_low=2, τ_pref=6, IPCP)",
        &TAU_HIGH,
        |t| TlpParams {
            tau_high: t,
            ..TlpParams::paper()
        },
    )
}

/// Sweeps τ_low with τ_high/τ_pref at paper values.
#[must_use]
pub fn run_tau_low(h: &Harness) -> ExperimentResult {
    sweep(
        h,
        "ext03b",
        "τ_low sensitivity (τ_high=14, τ_pref=6, IPCP)",
        &TAU_LOW,
        |t| TlpParams {
            tau_low: t,
            ..TlpParams::paper()
        },
    )
}

/// Sweeps τ_pref with τ_high/τ_low at paper values.
#[must_use]
pub fn run_tau_pref(h: &Harness) -> ExperimentResult {
    sweep(
        h,
        "ext03c",
        "τ_pref sensitivity (τ_high=14, τ_low=2, IPCP)",
        &TAU_PREF,
        |t| TlpParams {
            tau_pref: t,
            ..TlpParams::paper()
        },
    )
}
