//! Figure 6: where *accurate* (eventually used) L1D prefetches were served
//! from, in PPKI. Compared with Figure 5, the accurate-from-DRAM volume is
//! tiny — dropping DRAM-bound prefetches sacrifices little coverage.

use crate::report::ExperimentResult;
use crate::runner::Harness;
use crate::scheme::L1Pf;

use super::fig05::{ppki_rows, SERVING_LEVELS};
use super::mean_summaries;

/// Runs the experiment for one L1D prefetcher.
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("fig06-{}", l1pf.name()),
        format!("Serving level of accurate L1D prefetches ({})", l1pf.name()),
        "PPKI (prefetches per kilo-instruction)",
    );
    let columns: Vec<String> = SERVING_LEVELS.iter().map(|l| l.to_string()).collect();
    let tagged = ppki_rows(h, l1pf, true);
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
