//! Figure 11: single-core increase in DRAM transactions for PPF, Hermes,
//! Hermes+PPF and TLP over the baseline. TLP is the only scheme expected
//! to *reduce* traffic.

use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{mean_summaries, pct_delta, sweep_single_core};

/// Runs the experiment for one L1D prefetcher.
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("fig11-{}", l1pf.name()),
        format!("Single-core ΔDRAM transactions ({})", l1pf.name()),
        "% vs baseline (lower is better)",
    );
    let schemes = Scheme::HEADLINE;
    let columns: Vec<String> = schemes.iter().map(|s| s.name().to_string()).collect();
    let data = sweep_single_core(h, &schemes, l1pf);
    let mut tagged = Vec::new();
    for (w, reports) in &data {
        let base = reports[0].dram_transactions() as f64;
        let values: Vec<(String, f64)> = schemes
            .iter()
            .zip(&reports[1..])
            .map(|(s, r)| {
                (
                    s.name().to_string(),
                    pct_delta(r.dram_transactions() as f64, base),
                )
            })
            .collect();
        tagged.push((w.suite(), Row::new(w.name(), values)));
    }
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
