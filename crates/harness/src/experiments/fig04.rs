//! Figure 4: where the block actually resided for each Hermes off-chip
//! prediction (L1D / L2C / LLC / DRAM). Predictions whose block was on-chip
//! are wasted DRAM transactions; the L1D share motivates selective delay.

use tlp_sim::types::Level;

use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{mean_summaries, sweep_single_core};

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig04",
        "Location of the block upon a Hermes off-chip prediction",
        "% of issued off-chip predictions",
    );
    let columns: Vec<String> = Level::ALL.iter().map(|l| l.to_string()).collect();
    let data = sweep_single_core(h, &[Scheme::Hermes], L1Pf::Ipcp);
    let mut tagged = Vec::new();
    for (w, reports) in &data {
        let outcome = &reports[1].cores[0].offchip.issued_outcome;
        let total: u64 = outcome.iter().sum();
        let values: Vec<(String, f64)> = Level::ALL
            .iter()
            .map(|l| {
                let pct = if total == 0 {
                    0.0
                } else {
                    outcome[l.index()] as f64 * 100.0 / total as f64
                };
                (l.to_string(), pct)
            })
            .collect();
        tagged.push((w.suite(), Row::new(w.name(), values)));
    }
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
