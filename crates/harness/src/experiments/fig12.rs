//! Figure 12: accuracy of the L1D prefetcher (useful / determined
//! prefetches) under each scheme. TLP's SLP filter raises accuracy by
//! discarding DRAM-bound prefetches.

use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{mean_summaries, sweep_single_core};

/// Runs the experiment for one L1D prefetcher.
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("fig12-{}", l1pf.name()),
        format!("L1D prefetcher accuracy ({})", l1pf.name()),
        "% accuracy",
    );
    let schemes = Scheme::HEADLINE;
    let mut columns = vec!["Baseline".to_string()];
    columns.extend(schemes.iter().map(|s| s.name().to_string()));
    let data = sweep_single_core(h, &schemes, l1pf);
    let mut tagged = Vec::new();
    for (w, reports) in &data {
        let values: Vec<(String, f64)> = columns
            .iter()
            .zip(reports)
            .map(|(c, r)| (c.clone(), r.cores[0].l1_prefetch.accuracy() * 100.0))
            .collect();
        tagged.push((w.suite(), Row::new(w.name(), values)));
    }
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
