//! Figure 5: where *inaccurate* (never-used) L1D prefetches were served
//! from, in PPKI, for IPCP and Berti on the baseline system. The DRAM
//! dominance of this figure is what justifies using off-chip prediction as
//! a prefetch filter.

use tlp_sim::types::Level;
use tlp_trace::emit::Suite;

use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::L1Pf;

use super::{mean_summaries, sweep_single_core};

/// Serving levels an L1D prefetch can come from.
pub const SERVING_LEVELS: [Level; 3] = [Level::L2, Level::Llc, Level::Dram];

pub(crate) fn ppki_rows(h: &Harness, l1pf: L1Pf, useful: bool) -> Vec<(Suite, Row)> {
    let data = sweep_single_core(h, &[], l1pf);
    let mut tagged = Vec::new();
    for (w, reports) in &data {
        let r = &reports[0];
        let instr = r.cores[0].core.instructions;
        let pf = &r.cores[0].l1_prefetch;
        let values: Vec<(String, f64)> = SERVING_LEVELS
            .iter()
            .map(|l| (l.to_string(), pf.ppki(*l, useful, instr)))
            .collect();
        tagged.push((w.suite(), Row::new(w.name(), values)));
    }
    tagged
}

/// Runs the experiment for one L1D prefetcher.
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("fig05-{}", l1pf.name()),
        format!(
            "Serving level of inaccurate L1D prefetches ({})",
            l1pf.name()
        ),
        "PPKI (prefetches per kilo-instruction)",
    );
    let columns: Vec<String> = SERVING_LEVELS.iter().map(|l| l.to_string()).collect();
    let tagged = ppki_rows(h, l1pf, false);
    result.summary = mean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
