//! Figure 13: multi-core (4-core) weighted speedup of PPF, Hermes,
//! Hermes+PPF and TLP over the baseline.
//!
//! The metric follows §V-D: per mix, weighted IPC = Σ IPC_shared/IPC_single
//! (isolation IPC measured on the same scheme); the reported speedup is
//! the ratio of weighted IPCs scheme/baseline.

use crate::mix::generate_mixes;
use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{geomean_summaries, pct_delta, plan_mix_cells};

/// Per-core isolation bandwidth used for IPC_single (the workload alone on
/// the multi-core machine can use the full bus).
pub const SINGLE_GBPS: f64 = 12.8;

/// Runs the experiment for one L1D prefetcher.
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("fig13-{}", l1pf.name()),
        format!("4-core weighted speedup over baseline ({})", l1pf.name()),
        "% speedup (geomean summaries)",
    );
    let schemes = Scheme::HEADLINE;
    let columns: Vec<String> = schemes.iter().map(|s| s.name().to_string()).collect();
    let mixes = generate_mixes(&h.active_workloads(), h.rc.mixes_per_suite / 2 + 1);
    plan_mix_cells(h, &mixes, &schemes, l1pf, None, Some(SINGLE_GBPS));
    let tagged: Vec<_> = mixes
        .iter()
        .map(|m| {
            let base = h.run_mix(&m.workloads, Scheme::Baseline, l1pf, None);
            let base_ws = h.weighted_ipc(&m.workloads, &base, Scheme::Baseline, l1pf, SINGLE_GBPS);
            let values: Vec<(String, f64)> = schemes
                .iter()
                .map(|&s| {
                    let r = h.run_mix(&m.workloads, s, l1pf, None);
                    let ws = h.weighted_ipc(&m.workloads, &r, s, l1pf, SINGLE_GBPS);
                    (s.name().to_string(), pct_delta(ws, base_ws))
                })
                .collect();
            (m.suite, Row::new(m.name.clone(), values))
        })
        .collect();
    result.summary = geomean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
