//! Figure 15: contribution of each TLP component — FLP, SLP, TSP,
//! Delayed TSP, Selective TSP, TLP — as 4-core weighted speedup with IPCP.

use tlp_core::variants::TlpVariant;

use crate::mix::generate_mixes;
use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, Harness};
use crate::scheme::{L1Pf, Scheme};

use super::fig13::SINGLE_GBPS;
use super::{pct_delta, plan_mix_cells};

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig15",
        "Performance contribution of each TLP component (4-core, IPCP)",
        "% weighted speedup over baseline (geomean)",
    );
    let l1pf = L1Pf::Ipcp;
    let schemes: Vec<Scheme> = TlpVariant::ALL
        .iter()
        .map(|&v| Scheme::Variant(v))
        .collect();
    let mixes = generate_mixes(&h.active_workloads(), h.rc.mixes_per_suite / 2 + 1);
    plan_mix_cells(h, &mixes, &schemes, l1pf, None, Some(SINGLE_GBPS));
    let per_mix: Vec<Row> = mixes
        .iter()
        .map(|m| {
            let base = h.run_mix(&m.workloads, Scheme::Baseline, l1pf, None);
            let base_ws = h.weighted_ipc(&m.workloads, &base, Scheme::Baseline, l1pf, SINGLE_GBPS);
            let values: Vec<(String, f64)> = schemes
                .iter()
                .map(|&s| {
                    let r = h.run_mix(&m.workloads, s, l1pf, None);
                    let ws = h.weighted_ipc(&m.workloads, &r, s, l1pf, SINGLE_GBPS);
                    (s.name().to_string(), pct_delta(ws, base_ws))
                })
                .collect();
            Row::new(m.name.clone(), values)
        })
        .collect();
    // Summary: one geomean per variant, in the paper's order.
    let mut values = Vec::new();
    for s in &schemes {
        let xs: Vec<f64> = per_mix.iter().filter_map(|r| r.get(s.name())).collect();
        values.push((s.name().to_string(), geomean_speedup_percent(&xs)));
    }
    result.summary.push(Row::new("geomean", values));
    result.rows = per_mix;
    result
}
