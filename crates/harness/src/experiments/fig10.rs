//! Figure 10: single-core speedup of PPF, Hermes, Hermes+PPF and TLP over
//! the baseline, for IPCP (10a) and Berti (10b).

use crate::report::{ExperimentResult, Row};
use crate::runner::Harness;
use crate::scheme::{L1Pf, Scheme};

use super::{geomean_summaries, pct_delta, sweep_single_core};

/// Runs the experiment for one L1D prefetcher.
#[must_use]
pub fn run(h: &Harness, l1pf: L1Pf) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("fig10-{}", l1pf.name()),
        format!("Single-core speedup over baseline ({})", l1pf.name()),
        "% speedup (geomean summaries)",
    );
    let schemes = Scheme::HEADLINE;
    let columns: Vec<String> = schemes.iter().map(|s| s.name().to_string()).collect();
    let data = sweep_single_core(h, &schemes, l1pf);
    let mut tagged = Vec::new();
    for (w, reports) in &data {
        let base_ipc = reports[0].ipc();
        let values: Vec<(String, f64)> = schemes
            .iter()
            .zip(&reports[1..])
            .map(|(s, r)| (s.name().to_string(), pct_delta(r.ipc(), base_ipc)))
            .collect();
        tagged.push((w.suite(), Row::new(w.name(), values)));
    }
    result.summary = geomean_summaries(&tagged, &columns);
    result.rows = tagged.into_iter().map(|(_, r)| r).collect();
    result
}
