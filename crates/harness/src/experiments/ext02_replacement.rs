//! Extension E2: LLC replacement-policy ablation.
//!
//! The paper's related work (§VII) argues TLP is orthogonal to cache
//! replacement and bypassing proposals — its gains should survive a change
//! of LLC replacement policy. This experiment reruns Baseline and TLP with
//! LRU (Table III), SRRIP, DRRIP, SHiP-lite and Random at the LLC and
//! reports TLP's speedup/ΔDRAM *relative to the baseline using the same
//! policy*.

use tlp_sim::replacement::ReplKind;
use tlp_sim::SystemConfig;

use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, mean, Harness};
use crate::scheme::{L1Pf, Scheme};

use super::pct_delta;

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext02",
        "TLP under different LLC replacement policies (single-core, IPCP)",
        "% (speedup geomean / ΔDRAM mean) + baseline LLC MPKI",
    );
    let workloads = h.active_workloads();
    // One deduplicated batch over the whole (policy × scheme × workload)
    // grid; the per-policy loops below collect from the cache.
    let mut cells = Vec::new();
    for kind in ReplKind::ALL {
        let mut cfg = SystemConfig::cascade_lake(1);
        cfg.llc_repl = kind;
        for w in &workloads {
            for scheme in [Scheme::Baseline, Scheme::Tlp] {
                cells.push(h.cell_custom(w, scheme, L1Pf::Ipcp, cfg.clone(), kind.name()));
            }
        }
    }
    h.run_cells(cells);
    for kind in ReplKind::ALL {
        let mut cfg = SystemConfig::cascade_lake(1);
        cfg.llc_repl = kind;
        let per_w: Vec<_> = workloads
            .iter()
            .map(|w| {
                let base =
                    h.run_single_custom(w, Scheme::Baseline, L1Pf::Ipcp, cfg.clone(), kind.name());
                let tlp = h.run_single_custom(w, Scheme::Tlp, L1Pf::Ipcp, cfg.clone(), kind.name());
                (
                    pct_delta(tlp.ipc(), base.ipc()),
                    pct_delta(
                        tlp.dram_transactions() as f64,
                        base.dram_transactions() as f64,
                    ),
                    base.llc_mpki(),
                )
            })
            .collect();
        let speedups: Vec<f64> = per_w.iter().map(|x| x.0).collect();
        let deltas: Vec<f64> = per_w.iter().map(|x| x.1).collect();
        let mpkis: Vec<f64> = per_w.iter().map(|x| x.2).collect();
        result.rows.push(Row::new(
            kind.name(),
            vec![
                ("TLP speedup".into(), geomean_speedup_percent(&speedups)),
                ("TLP ΔDRAM".into(), mean(&deltas)),
                ("base MPKI".into(), mean(&mpkis)),
            ],
        ));
    }
    result
}
