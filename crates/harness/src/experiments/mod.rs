//! One module per paper figure/table. Each `run` function returns an
//! [`crate::report::ExperimentResult`] with the same rows/series the paper
//! plots (per-workload values plus the SPEC/GAP/ALL summaries).

pub mod ext01_offchip;
pub mod ext02_replacement;
pub mod ext03_thresholds;
pub mod ext04_features;
pub mod ext05_storage;
pub mod ext06_victim;
pub mod ext07_rl;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod tables;

use std::sync::Arc;

use tlp_trace::emit::{Suite, Workload};

use crate::mix::Mix;
use crate::report::Row;
use crate::runner::{geomean_speedup_percent, mean, Harness};
use crate::scheme::{L1Pf, Scheme};

/// Percent change from `base` to `new` (positive = increase).
#[must_use]
pub(crate) fn pct_delta(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    (new / base - 1.0) * 100.0
}

/// Runs `schemes` (plus `Baseline`) over the active workload set through
/// the run engine, returning `(workload, per-scheme reports)` where index
/// 0 is always the baseline.
///
/// The whole (workload × scheme) grid is submitted as one deduplicated
/// batch — cells another experiment already simulated come from the cache
/// — and collection is sequential over cache hits, so the result is
/// independent of thread count.
pub(crate) fn sweep_single_core(
    h: &Harness,
    schemes: &[Scheme],
    l1pf: L1Pf,
) -> Vec<(Arc<dyn Workload>, Vec<tlp_sim::SimReport>)> {
    let workloads = h.active_workloads();
    let mut all = vec![Scheme::Baseline];
    all.extend_from_slice(schemes);
    h.run_cells(
        workloads
            .iter()
            .flat_map(|w| all.iter().map(|&s| h.cell_single(w, s, l1pf, None)))
            .collect(),
    );
    workloads
        .into_iter()
        .map(|w| {
            let reports = all.iter().map(|&s| h.run_single(&w, s, l1pf)).collect();
            (w, reports)
        })
        .collect()
}

/// Submits the full (mix × scheme) grid of a multi-core experiment to the
/// run engine in one deduplicated batch: every mix cell at bandwidth
/// `gbps`, plus — when `single_gbps` is given — the per-workload isolation
/// cells that [`Harness::weighted_ipc`] needs. `Baseline` is always
/// planned in addition to `schemes` (like [`sweep_single_core`]), since
/// every collection loop compares against it. After this returns, the
/// experiment's collection loop runs entirely on cache hits.
pub(crate) fn plan_mix_cells(
    h: &Harness,
    mixes: &[Mix],
    schemes: &[Scheme],
    l1pf: L1Pf,
    gbps: Option<f64>,
    single_gbps: Option<f64>,
) {
    let mut all = vec![Scheme::Baseline];
    all.extend_from_slice(schemes);
    let mut cells = Vec::new();
    for m in mixes {
        for &s in &all {
            cells.push(h.cell_mix(&m.workloads, s, l1pf, gbps));
            if let Some(bw) = single_gbps {
                for w in &m.workloads {
                    cells.push(h.cell_single(w, s, l1pf, Some(bw)));
                }
            }
        }
    }
    h.run_cells(cells);
}

/// Appends SPEC / GAP / ALL summary rows to per-workload rows.
///
/// `summarize` receives the values of one column for one group and reduces
/// them (mean or geomean).
pub(crate) fn suite_summaries<F>(
    rows: &[(Suite, Row)],
    columns: &[String],
    summarize: F,
) -> Vec<Row>
where
    F: Fn(&[f64]) -> f64,
{
    let mut out = Vec::new();
    for (label, filter) in [
        ("SPEC avg", Some(Suite::Spec)),
        ("GAP avg", Some(Suite::Gap)),
        ("ALL avg", None),
    ] {
        let mut values = Vec::new();
        for col in columns {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|(s, _)| filter.is_none() || Some(*s) == filter)
                .filter_map(|(_, r)| r.get(col))
                .collect();
            values.push((col.clone(), summarize(&xs)));
        }
        out.push(Row::new(label, values));
    }
    out
}

/// Mean-based summaries.
pub(crate) fn mean_summaries(rows: &[(Suite, Row)], columns: &[String]) -> Vec<Row> {
    suite_summaries(rows, columns, mean)
}

/// Geomean-based summaries (for speedup percentages).
pub(crate) fn geomean_summaries(rows: &[(Suite, Row)], columns: &[String]) -> Vec<Row> {
    suite_summaries(rows, columns, geomean_speedup_percent)
}

/// Per-scheme single-core summary used by the extension sweeps:
/// `(geomean speedup %, mean ΔDRAM %)` for each scheme against the
/// baseline, over the active workload set with prefetcher `l1pf`.
pub(crate) fn speedup_and_dram(h: &Harness, schemes: &[Scheme], l1pf: L1Pf) -> Vec<(f64, f64)> {
    let data = sweep_single_core(h, schemes, l1pf);
    (0..schemes.len())
        .map(|i| {
            let mut speedups = Vec::new();
            let mut deltas = Vec::new();
            for (_, reports) in &data {
                let base = &reports[0];
                let r = &reports[i + 1];
                speedups.push(pct_delta(r.ipc(), base.ipc()));
                deltas.push(pct_delta(
                    r.dram_transactions() as f64,
                    base.dram_transactions() as f64,
                ));
            }
            (geomean_speedup_percent(&speedups), mean(&deltas))
        })
        .collect()
}
