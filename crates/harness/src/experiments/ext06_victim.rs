//! Extension E6: victim cache vs TLP.
//!
//! The paper's related work (§VII) contrasts TLP with the Victim Cache
//! [Jouppi 1990]: effective for conflict-heavy SPEC-style workloads but
//! reliant on locality that irregular workloads break, whereas TLP
//! "does not rely on locality assumptions and shortcuts the cache
//! hierarchy when it is predicted to be inefficient". This experiment
//! attaches a 64-entry victim buffer to the LLC and compares Baseline,
//! Baseline+VC, TLP and TLP+VC against the plain baseline.

use tlp_sim::SystemConfig;

use crate::report::{ExperimentResult, Row};
use crate::runner::{geomean_speedup_percent, mean, Harness};
use crate::scheme::{L1Pf, Scheme};

use super::pct_delta;

/// Victim-cache entries used by the experiment.
pub const VC_ENTRIES: usize = 64;

/// Runs the experiment.
#[must_use]
pub fn run(h: &Harness) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext06",
        "Victim cache (64-entry, LLC) vs TLP (single-core, IPCP)",
        "% (speedup geomean / ΔDRAM mean / VC hit-rate mean)",
    );
    let workloads = h.active_workloads();
    let mut vc_cfg = SystemConfig::cascade_lake(1);
    vc_cfg.victim_cache_entries = VC_ENTRIES;
    let configs: [(&str, Scheme, bool); 4] = [
        ("Baseline+VC", Scheme::Baseline, true),
        ("TLP", Scheme::Tlp, false),
        ("TLP+VC", Scheme::Tlp, true),
        ("Hermes", Scheme::Hermes, false),
    ];
    let mut cells = vec![];
    for w in &workloads {
        cells.push(h.cell_single(w, Scheme::Baseline, L1Pf::Ipcp, None));
        for (_, scheme, vc) in configs {
            cells.push(if vc {
                h.cell_custom(w, scheme, L1Pf::Ipcp, vc_cfg.clone(), "vc64")
            } else {
                h.cell_single(w, scheme, L1Pf::Ipcp, None)
            });
        }
    }
    h.run_cells(cells);
    let per_w: Vec<_> = workloads
        .iter()
        .map(|w| {
            let base = h.run_single(w, Scheme::Baseline, L1Pf::Ipcp);
            let mut rows = Vec::new();
            for (label, scheme, vc) in configs {
                let r = if vc {
                    h.run_single_custom(w, scheme, L1Pf::Ipcp, vc_cfg.clone(), "vc64")
                } else {
                    h.run_single(w, scheme, L1Pf::Ipcp)
                };
                rows.push((
                    label,
                    pct_delta(r.ipc(), base.ipc()),
                    pct_delta(
                        r.dram_transactions() as f64,
                        base.dram_transactions() as f64,
                    ),
                    r.victim.hit_rate() * 100.0,
                ));
            }
            rows
        })
        .collect();
    for (i, (label, _, _)) in configs.iter().enumerate() {
        let speedups: Vec<f64> = per_w.iter().map(|r| r[i].1).collect();
        let deltas: Vec<f64> = per_w.iter().map(|r| r[i].2).collect();
        let hit_rates: Vec<f64> = per_w.iter().map(|r| r[i].3).collect();
        result.rows.push(Row::new(
            *label,
            vec![
                ("speedup".into(), geomean_speedup_percent(&speedups)),
                ("ΔDRAM".into(), mean(&deltas)),
                ("VC hit%".into(), mean(&hit_rates)),
            ],
        ));
    }
    result
}
