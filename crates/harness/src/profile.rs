//! The `--profile` artifact: a structured, parseable snapshot of
//! everything the observability layer recorded during a run.
//!
//! The artifact is a [`tlp_sim::serial`] JSON value (the same codec the
//! result cache and the serve protocol use — integers and strings only,
//! no floats), with four sections:
//!
//! - `version` — the artifact format version ([`PROFILE_VERSION`]);
//! - `engine` + `run_engine` — the engine mode and the run-cache
//!   counter snapshot, field-for-field equal to the `# run-engine:`
//!   summary line (both are rendered from the same registry);
//! - `metrics` — every metric of the run cache's registry merged with
//!   the process-global registry (`sim_*` engine metrics when built
//!   with the `obs` feature), histograms carried as
//!   count/sum/min/max/p50/p90/p99;
//! - `cells` — the per-cell wall-clock timing log (label, outcome,
//!   queue wait, total duration).

use std::path::Path;

use tlp_obs::{MetricValue, Snapshot};
use tlp_sim::serial::Value;

use crate::cache::EngineStats;
use crate::runner::Harness;

/// Format version of the `--profile` artifact.
pub const PROFILE_VERSION: u64 = 1;

/// Schema revision of the artifact's *shape*: 2 added the top-level
/// `schema` field itself and the optional `timeline` summary section
/// (present when a run exported `--timeline` telemetry).
pub const PROFILE_SCHEMA: u64 = 2;

/// Builds the profile artifact for a harness's run so far. `engine`
/// names the configured engine mode (`cycle`/`event`).
#[must_use]
pub fn profile_value(harness: &Harness, engine: &str) -> Value {
    profile_value_with(harness, engine, None)
}

/// [`profile_value`] with an optional timeline summary (see
/// [`crate::timeline::summary_value`]) embedded as a `timeline` field.
#[must_use]
pub fn profile_value_with(harness: &Harness, engine: &str, timeline: Option<Value>) -> Value {
    let stats = harness.engine_stats();
    let merged = harness
        .metrics()
        .snapshot()
        .merged(tlp_obs::global().snapshot());
    let cells = harness
        .cell_timings()
        .into_iter()
        .map(|t| {
            Value::Obj(vec![
                ("label".to_owned(), Value::Str(t.label)),
                (
                    "outcome".to_owned(),
                    Value::Str(t.outcome.as_str().to_owned()),
                ),
                ("queue_wait_ns".to_owned(), Value::Num(t.queue_wait_ns)),
                ("total_ns".to_owned(), Value::Num(t.total_ns)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("schema".to_owned(), Value::Num(PROFILE_SCHEMA)),
        ("version".to_owned(), Value::Num(PROFILE_VERSION)),
        ("engine".to_owned(), Value::Str(engine.to_owned())),
        ("run_engine".to_owned(), stats_value(&stats)),
        ("metrics".to_owned(), metrics_value(&merged)),
        ("cells".to_owned(), Value::Arr(cells)),
    ];
    if let Some(t) = timeline {
        fields.push(("timeline".to_owned(), t));
    }
    Value::Obj(fields)
}

/// Writes [`profile_value`] as JSON text to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be written.
pub fn write_profile(harness: &Harness, engine: &str, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, profile_value(harness, engine).render())
}

/// The [`EngineStats`] snapshot as an object value — one field per
/// counter of the `# run-engine:` summary line.
#[must_use]
pub fn stats_value(stats: &EngineStats) -> Value {
    Value::Obj(vec![
        ("requested".to_owned(), Value::Num(stats.requested)),
        ("deduped".to_owned(), Value::Num(stats.deduped)),
        ("mem_hits".to_owned(), Value::Num(stats.mem_hits)),
        ("disk_hits".to_owned(), Value::Num(stats.disk_hits)),
        ("coalesced".to_owned(), Value::Num(stats.coalesced)),
        ("corrupt".to_owned(), Value::Num(stats.corrupt)),
        ("evicted".to_owned(), Value::Num(stats.evicted)),
        (
            "inline_simulated".to_owned(),
            Value::Num(stats.inline_simulated),
        ),
        ("simulated".to_owned(), Value::Num(stats.simulated)),
    ])
}

/// A metrics snapshot as an array of per-metric objects. Gauges are
/// clamped at zero (the serial codec is unsigned); every sample a
/// histogram reports is a `u64` nanosecond (or count) already.
fn metrics_value(snapshot: &Snapshot) -> Value {
    let items = snapshot
        .metrics
        .iter()
        .map(|m| {
            let mut fields = vec![("name".to_owned(), Value::Str(m.name.clone()))];
            match &m.value {
                MetricValue::Counter(v) => {
                    fields.push(("kind".to_owned(), Value::Str("counter".to_owned())));
                    fields.push(("value".to_owned(), Value::Num(*v)));
                }
                MetricValue::Gauge(v) => {
                    fields.push(("kind".to_owned(), Value::Str("gauge".to_owned())));
                    fields.push((
                        "value".to_owned(),
                        Value::Num(u64::try_from(*v).unwrap_or(0)),
                    ));
                }
                MetricValue::Histogram(h) => {
                    fields.push(("kind".to_owned(), Value::Str("histogram".to_owned())));
                    fields.push(("count".to_owned(), Value::Num(h.count)));
                    fields.push(("sum".to_owned(), Value::Num(h.sum)));
                    fields.push(("min".to_owned(), Value::Num(h.min)));
                    fields.push(("max".to_owned(), Value::Num(h.max)));
                    fields.push(("p50".to_owned(), Value::Num(h.quantile(0.5))));
                    fields.push(("p90".to_owned(), Value::Num(h.quantile(0.9))));
                    fields.push(("p99".to_owned(), Value::Num(h.quantile(0.99))));
                }
            }
            Value::Obj(fields)
        })
        .collect();
    Value::Arr(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;

    #[test]
    fn artifact_round_trips_and_matches_engine_stats() {
        let h = Harness::new(RunConfig::test());
        let w = h.active_workloads()[0].clone();
        let cell = h.cell_single(&w, crate::scheme::Scheme::Baseline, crate::L1Pf::Ipcp, None);
        h.run_cells(vec![cell]);
        let v = profile_value(&h, "cycle");
        let parsed = tlp_sim::serial::parse_value(&v.render()).expect("artifact parses");
        assert_eq!(parsed.u64_field("schema").unwrap(), PROFILE_SCHEMA);
        assert_eq!(parsed.u64_field("version").unwrap(), PROFILE_VERSION);
        assert_eq!(parsed.str_field("engine").unwrap(), "cycle");
        // No timeline capture ran: the summary section is absent.
        assert!(parsed.field("timeline").is_err());
        let st = h.engine_stats();
        let re = parsed.field("run_engine").unwrap();
        assert_eq!(re.u64_field("simulated").unwrap(), st.simulated);
        assert_eq!(re.u64_field("requested").unwrap(), st.requested);
        assert_eq!(re.u64_field("coalesced").unwrap(), st.coalesced);
        // The metrics section carries the same counter the summary uses.
        let metrics = parsed.arr_field("metrics").unwrap();
        let simulated = metrics
            .iter()
            .find(|m| m.str_field("name").as_deref() == Ok("run_cache_simulated_total"))
            .expect("run-cache counter present");
        assert_eq!(simulated.u64_field("value").unwrap(), st.simulated);
        // One cell ran: the timing log has it, with a known outcome.
        let cells = parsed.arr_field("cells").unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].str_field("outcome").unwrap(), "simulated");
        assert!(cells[0].u64_field("total_ns").unwrap() > 0);
    }

    #[test]
    fn timeline_summary_embeds_under_schema_2() {
        let h = Harness::new(RunConfig::test());
        let summary = Value::Obj(vec![("total_windows".to_owned(), Value::Num(3))]);
        let v = profile_value_with(&h, "event", Some(summary));
        let parsed = tlp_sim::serial::parse_value(&v.render()).expect("artifact parses");
        assert_eq!(parsed.u64_field("schema").unwrap(), PROFILE_SCHEMA);
        let t = parsed.field("timeline").expect("summary embedded");
        assert_eq!(t.u64_field("total_windows").unwrap(), 3);
    }
}
