//! The `Session` facade: registry + result cache + worker pool behind one
//! handle.
//!
//! A session owns a private clone of the built-in
//! [`ComponentRegistry`] (so custom registrations never leak across
//! sessions) and a [`Harness`] (the content-addressed result cache and
//! the sharded run engine). It is the public entry point for running
//! *specs* — including compositions over components registered at run
//! time — through exactly the same cells, cache and thread pool the
//! paper experiments use:
//!
//! ```no_run
//! use tlp_harness::{RunConfig, Session};
//! use tlp_plugin::SchemeSpec;
//!
//! let session = Session::new(RunConfig::test());
//! let spec = SchemeSpec::new("my-tlp").offchip("flp").l1_filter("slp");
//! let rows = session.run_sweep(&spec, "ipcp").unwrap();
//! for (workload, report) in rows {
//!     println!("{workload}: IPC {:.3}", report.ipc());
//! }
//! ```

use std::sync::Arc;

use tlp_plugin::{ComponentRef, ComponentRegistry, PluginError, ResolvedScheme, SchemeSpec};
use tlp_sim::SimReport;
use tlp_trace::emit::Workload;

use crate::plugins::builtin_registry;
use crate::report::{ExperimentResult, Row};
use crate::runner::{Harness, RunConfig};
use crate::scheme::ResolvedL1Pf;

/// Errors surfaced by session-level runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Registry/spec errors (unknown components, bad parameters, ...).
    Plugin(PluginError),
    /// A workload name not present in the active catalog.
    UnknownWorkload {
        /// The unknown name.
        name: String,
        /// Closest catalog names, best first.
        did_you_mean: Vec<String>,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Plugin(e) => e.fmt(f),
            SessionError::UnknownWorkload { name, did_you_mean } => {
                write!(f, "unknown workload: {name}")?;
                if !did_you_mean.is_empty() {
                    write!(f, " (did you mean: {}?)", did_you_mean.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<PluginError> for SessionError {
    fn from(e: PluginError) -> Self {
        SessionError::Plugin(e)
    }
}

/// Registry + result cache + thread pool: the composition API's runtime.
pub struct Session {
    registry: ComponentRegistry,
    harness: Harness,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("registry", &self.registry)
            .field("harness", &self.harness)
            .finish()
    }
}

impl Session {
    /// A session over the built-in registry with a memory-only cache.
    #[must_use]
    pub fn new(rc: RunConfig) -> Self {
        Self {
            registry: builtin_registry().clone(),
            harness: Harness::new(rc),
        }
    }

    /// Adds the on-disk cache tier under `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.harness = self.harness.with_cache_dir(dir)?;
        Ok(self)
    }

    /// Adds a pre-configured on-disk tier (e.g. a size-capped
    /// [`tlp_harness::cache::DiskCache`](crate::cache::DiskCache) — the
    /// `tlp-serve` daemon uses this for its shared store).
    #[must_use]
    pub fn with_disk_cache(mut self, disk: crate::cache::DiskCache) -> Self {
        self.harness = self.harness.with_disk_cache(disk);
        self
    }

    /// Adds the content-addressed on-disk trace store under `dir` (see
    /// [`Harness::with_trace_dir`]): captures persist as TLPT v2 files
    /// and later runs stream them back instead of re-capturing.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn with_trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.harness = self.harness.with_trace_dir(dir)?;
        Ok(self)
    }

    /// The session's registry (for lookups and listings).
    #[must_use]
    pub fn registry(&self) -> &ComponentRegistry {
        &self.registry
    }

    /// The session's registry, mutably — register custom components and
    /// schemes here before composing specs that name them.
    pub fn registry_mut(&mut self) -> &mut ComponentRegistry {
        &mut self.registry
    }

    /// The underlying harness (experiments take `&Harness`).
    #[must_use]
    pub fn harness(&self) -> &Harness {
        &self.harness
    }

    /// Resolves a spec against this session's registry and dry-runs its
    /// factories, so malformed parameters surface here as `Err` instead
    /// of panicking a worker thread at simulation time.
    ///
    /// # Errors
    ///
    /// Returns unknown-component errors (with did-you-mean suggestions)
    /// and factory parameter errors.
    pub fn resolve_spec(&self, spec: &SchemeSpec) -> Result<Arc<ResolvedScheme>, SessionError> {
        let resolved = self.registry.resolve(spec)?;
        resolved.validate()?;
        Ok(Arc::new(resolved))
    }

    /// Looks a named scheme up and resolves it.
    ///
    /// # Errors
    ///
    /// Returns unknown-scheme/component errors with suggestions.
    pub fn resolve_scheme_name(&self, name: &str) -> Result<Arc<ResolvedScheme>, SessionError> {
        let spec = self.registry.scheme(name)?.clone();
        self.resolve_spec(&spec)
    }

    /// Resolves an L1D prefetcher by name (dry-building it, so factory
    /// errors surface here).
    ///
    /// # Errors
    ///
    /// Returns unknown-component errors with suggestions and factory
    /// parameter errors.
    pub fn resolve_l1pf_name(&self, name: &str) -> Result<Arc<ResolvedL1Pf>, SessionError> {
        let resolved = self
            .registry
            .resolve_l1_prefetcher(&ComponentRef::new(name))?;
        resolved.build(&mut tlp_plugin::BuildCtx::new()).map(drop)?;
        Ok(Arc::new(resolved))
    }

    /// Finds a workload in the catalog by name.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UnknownWorkload`] with suggestions.
    pub fn workload(&self, name: &str) -> Result<Arc<dyn Workload>, SessionError> {
        // `trace:NAME` resolves against the trace store's imports, not
        // the generated catalog.
        if name.starts_with(tlp_tracestore::TRACE_NAMESPACE) {
            return self.harness.trace_workload(name).ok_or_else(|| {
                SessionError::UnknownWorkload {
                    name: name.to_owned(),
                    did_you_mean: Vec::new(),
                }
            });
        }
        self.harness
            .workloads()
            .iter()
            .find(|w| w.name() == name)
            .cloned()
            .ok_or_else(|| SessionError::UnknownWorkload {
                name: name.to_owned(),
                did_you_mean: tlp_plugin::suggest(
                    name,
                    self.harness.workloads().iter().map(|w| w.name()),
                ),
            })
    }

    /// SimPoint-sampled estimate of one spec on one workload: replays the
    /// top-`k` SimPoint regions and reconstitutes a full-run estimate
    /// (see [`Harness::run_simpoints_spec`]).
    ///
    /// # Errors
    ///
    /// Propagates resolution and workload-lookup errors.
    pub fn run_simpoints(
        &self,
        workload: &str,
        spec: &SchemeSpec,
        l1pf: &str,
        k: usize,
    ) -> Result<crate::runner::SimPointRun, SessionError> {
        let w = self.workload(workload)?;
        let scheme = self.resolve_spec(spec)?;
        let pf = self.resolve_l1pf_name(l1pf)?;
        Ok(self.harness.run_simpoints_spec(&w, scheme, pf, k))
    }

    /// Runs one spec on one workload (planned through the run engine, so
    /// the result lands in — or comes from — the shared cache).
    ///
    /// # Errors
    ///
    /// Propagates resolution and workload-lookup errors.
    pub fn run_single(
        &self,
        workload: &str,
        spec: &SchemeSpec,
        l1pf: &str,
    ) -> Result<SimReport, SessionError> {
        let w = self.workload(workload)?;
        let scheme = self.resolve_spec(spec)?;
        let pf = self.resolve_l1pf_name(l1pf)?;
        // Plan, then collect (two identical cells: RunCell is single-use).
        self.harness.run_cells(vec![self.harness.cell_single_spec(
            &w,
            Arc::clone(&scheme),
            Arc::clone(&pf),
            None,
        )]);
        let cell = self.harness.cell_single_spec(&w, scheme, pf, None);
        Ok(self.harness.run_cell(&cell))
    }

    /// Runs one spec across the active workload set: the whole grid is
    /// planned up front (deduplicated, cache-answered, sharded over the
    /// worker pool), then collected in catalog order.
    ///
    /// # Errors
    ///
    /// Propagates resolution errors.
    pub fn run_sweep(
        &self,
        spec: &SchemeSpec,
        l1pf: &str,
    ) -> Result<Vec<(String, SimReport)>, SessionError> {
        let scheme = self.resolve_spec(spec)?;
        let pf = self.resolve_l1pf_name(l1pf)?;
        let workloads = self.harness.active_workloads();
        self.harness.run_cells(
            workloads
                .iter()
                .map(|w| {
                    self.harness
                        .cell_single_spec(w, Arc::clone(&scheme), Arc::clone(&pf), None)
                })
                .collect(),
        );
        Ok(workloads
            .iter()
            .map(|w| {
                let cell =
                    self.harness
                        .cell_single_spec(w, Arc::clone(&scheme), Arc::clone(&pf), None);
                (w.name().to_owned(), self.harness.run_cell(&cell))
            })
            .collect())
    }

    /// [`Session::run_sweep`] rendered as an [`ExperimentResult`] table
    /// (one row per workload: IPC, DRAM transactions, L1D prefetches
    /// issued) — the `tlp_repro --scheme` output.
    ///
    /// # Errors
    ///
    /// Propagates resolution errors.
    pub fn scheme_table(
        &self,
        spec: &SchemeSpec,
        l1pf: &str,
    ) -> Result<ExperimentResult, SessionError> {
        let rows = self.run_sweep(spec, l1pf)?;
        Ok(scheme_result(spec.name(), l1pf, &rows))
    }

    /// Run-engine counter snapshot.
    #[must_use]
    pub fn engine_stats(&self) -> crate::cache::EngineStats {
        self.harness.engine_stats()
    }

    /// The run cache's metrics registry (see [`Harness::metrics`]).
    #[must_use]
    pub fn metrics(&self) -> &tlp_obs::MetricsRegistry {
        self.harness.metrics()
    }

    /// Captures simulated-time telemetry for one spec across the named
    /// workloads (every catalog workload when `workloads` is empty):
    /// each cell re-simulates with a recorder attached, through the
    /// harness's timeline blob cache.
    ///
    /// # Errors
    ///
    /// Propagates resolution and workload-lookup errors.
    pub fn timeline_runs(
        &self,
        workloads: &[String],
        spec: &SchemeSpec,
        l1pf: &str,
        tcfg: tlp_sim::TimelineConfig,
    ) -> Result<Vec<crate::timeline::TimelineRun>, SessionError> {
        let scheme = self.resolve_spec(spec)?;
        let pf = self.resolve_l1pf_name(l1pf)?;
        let ws: Vec<Arc<dyn Workload>> = if workloads.is_empty() {
            self.harness.active_workloads()
        } else {
            workloads
                .iter()
                .map(|n| self.workload(n))
                .collect::<Result<_, _>>()?
        };
        Ok(ws
            .iter()
            .map(|w| crate::timeline::TimelineRun {
                workload: w.name().to_owned(),
                scheme: spec.name().to_owned(),
                l1pf: l1pf.to_owned(),
                timeline: self.harness.timeline_single_spec(
                    w,
                    Arc::clone(&scheme),
                    Arc::clone(&pf),
                    tcfg,
                ),
            })
            .collect())
    }

    /// The `--profile` artifact for this session's runs so far (see
    /// [`crate::profile`]). `engine` names the configured engine mode.
    #[must_use]
    pub fn profile_value(&self, engine: &str) -> tlp_sim::serial::Value {
        crate::profile::profile_value(&self.harness, engine)
    }

    /// Writes the `--profile` artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn write_profile(&self, engine: &str, path: &std::path::Path) -> std::io::Result<()> {
        crate::profile::write_profile(&self.harness, engine, path)
    }
}

/// Renders sweep rows as the `--scheme` [`ExperimentResult`] table (one
/// row per workload: IPC, DRAM transactions, L1D prefetches issued, plus
/// a mean-IPC summary row). A free function so the `tlp-serve` client can
/// render the exact same bytes from streamed reports that the in-process
/// [`Session::scheme_table`] path produces.
#[must_use]
pub fn scheme_result(
    scheme_name: &str,
    l1pf: &str,
    rows: &[(String, SimReport)],
) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        format!("scheme-{}", slug(scheme_name)),
        format!("Scheme sweep: {scheme_name} (L1D prefetcher: {l1pf})"),
        "IPC / DRAM transactions / L1D prefetches issued",
    );
    let mut ipcs = Vec::new();
    for (workload, report) in rows {
        let issued: u64 = report.cores.iter().map(|c| c.l1_prefetch.issued).sum();
        ipcs.push(report.ipc());
        result.rows.push(Row::new(
            workload.clone(),
            vec![
                ("IPC".to_owned(), report.ipc()),
                ("DRAM".to_owned(), report.dram_transactions() as f64),
                ("L1 PF issued".to_owned(), issued as f64),
            ],
        ));
    }
    result.summary.push(Row::new(
        "mean",
        vec![("IPC".to_owned(), crate::runner::mean(&ipcs))],
    ));
    result
}

/// Lowercase, dash-separated form of a scheme name for result ids.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}
