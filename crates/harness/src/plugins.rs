//! The built-in plugin registry: every workspace crate's components plus
//! the named built-in schemes, assembled once per process.
//!
//! Each component crate registers its own factories
//! (`tlp_core::register_builtin`, `tlp_prefetch::register_builtin`,
//! `tlp_baselines::register_builtin`, `tlp_rl::register_builtin`); the
//! harness contributes the named scheme compositions
//! ([`crate::scheme::register_builtin_schemes`]). A
//! [`Session`](crate::session::Session) clones this registry so custom
//! registrations stay session-local.

use std::sync::OnceLock;

use tlp_plugin::ComponentRegistry;

/// The process-wide built-in registry.
///
/// # Panics
///
/// Panics (once, at first use) if the built-in registrations collide —
/// which would be a workspace bug, not a runtime condition; the
/// name-uniqueness tests in `tests/plugin_api.rs` pin it.
pub fn builtin_registry() -> &'static ComponentRegistry {
    static REG: OnceLock<ComponentRegistry> = OnceLock::new();
    REG.get_or_init(|| {
        let mut reg = ComponentRegistry::new();
        tlp_core::register_builtin(&mut reg).expect("tlp-core builtins");
        tlp_prefetch::register_builtin(&mut reg).expect("tlp-prefetch builtins");
        tlp_baselines::register_builtin(&mut reg).expect("tlp-baselines builtins");
        tlp_rl::register_builtin(&mut reg).expect("tlp-rl builtins");
        crate::scheme::register_builtin_schemes(&mut reg).expect("built-in schemes");
        reg
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_plugin::Seam;

    #[test]
    fn builtin_registry_holds_all_seams_and_schemes() {
        let reg = builtin_registry();
        for (seam, name) in [
            (Seam::OffChip, "flp"),
            (Seam::OffChip, "hermes"),
            (Seam::OffChip, "lp"),
            (Seam::OffChip, "athena-rl"),
            (Seam::L1Prefetcher, "ipcp"),
            (Seam::L1Prefetcher, "berti+7KB"),
            (Seam::L1Filter, "slp"),
            (Seam::L1Filter, "athena-rl-filter"),
            (Seam::L2Prefetcher, "spp"),
            (Seam::L2Filter, "ppf"),
        ] {
            assert!(reg.contains(seam, name), "{seam} '{name}' missing");
        }
        assert!(reg.scheme("TLP").is_ok());
        assert!(!reg.schemes().is_empty());
    }
}
