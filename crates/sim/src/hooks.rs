//! Plugin interfaces: off-chip predictors, prefetchers and prefetch filters.
//!
//! The simulator is scheme-agnostic: Hermes, TLP and every Figure-15
//! ablation variant plug into the same four traits. Callbacks fire at the
//! microarchitectural points the paper describes — load dispatch from the
//! core, L1D miss, prefetch issue, and request completion (training).

use tlp_perceptron::FeatureIndices;

use crate::types::{CoreId, Cycle, Level};

/// Context for an off-chip prediction at load dispatch.
#[derive(Debug, Clone, Copy)]
pub struct LoadCtx {
    /// Issuing core.
    pub core: CoreId,
    /// Load PC.
    pub pc: u64,
    /// Virtual address (FLP operates pre-translation).
    pub vaddr: u64,
    /// Dispatch cycle.
    pub cycle: Cycle,
}

/// The three-way outcome of an FLP-style prediction (Hermes only ever uses
/// the first and last variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffChipDecision {
    /// Confidence above τ_high: issue the speculative DRAM request from the
    /// core, in parallel with the L1D lookup.
    IssueNow,
    /// Confidence in (τ_low, τ_high]: tag the load; issue the speculative
    /// request only if the L1D lookup misses (the paper's selective delay).
    IssueOnL1dMiss,
    /// Confidence below τ_low: no speculative request.
    NoIssue,
}

/// Prediction metadata carried in the load-queue entry (Table II: hashed PC,
/// last-4 PCs, first-access bit, confidence — we carry the resolved feature
/// indices, which is the same information post-hash).
#[derive(Debug, Clone, Copy)]
pub struct OffChipTag {
    /// What the predictor decided.
    pub decision: OffChipDecision,
    /// Raw perceptron sum at prediction time.
    pub confidence: i32,
    /// Weight-table indices read at prediction time (for training).
    pub indices: FeatureIndices,
    /// False when no predictor was consulted.
    pub valid: bool,
}

impl OffChipTag {
    /// The tag used when no off-chip predictor is present.
    #[must_use]
    pub fn none() -> Self {
        Self {
            decision: OffChipDecision::NoIssue,
            confidence: 0,
            indices: FeatureIndices::empty(),
            valid: false,
        }
    }

    /// True when the load was flagged off-chip (immediately or delayed);
    /// this is the FLP output bit that SLP's leveling feature consumes.
    #[must_use]
    pub fn predicted_offchip(&self) -> bool {
        !matches!(self.decision, OffChipDecision::NoIssue)
    }

    /// Reconstructs a minimal tag from the stored FLP decision (used when
    /// rebuilding filter-training contexts from request metadata). The
    /// two-bit decision is carried through the stored metadata verbatim —
    /// the predecessor of this constructor collapsed it to a single
    /// off-chip bit and always reconstructed `IssueOnL1dMiss`, losing
    /// whether the original prediction was `IssueNow`.
    #[must_use]
    pub fn from_decision(decision: OffChipDecision) -> Self {
        Self {
            decision,
            confidence: 0,
            indices: FeatureIndices::empty(),
            valid: true,
        }
    }
}

impl Default for OffChipTag {
    fn default() -> Self {
        Self::none()
    }
}

/// An off-chip predictor for demand loads (Hermes, FLP, or none).
pub trait OffChipPredictor: Send {
    /// Consulted at load dispatch; returns the decision plus training
    /// metadata to be stored in the load-queue entry.
    fn predict_load(&mut self, ctx: &LoadCtx) -> OffChipTag;

    /// Called when the load's data returns to the core. `served_from` is
    /// the level that actually provided the data (the training label:
    /// positive iff DRAM).
    fn train_load(&mut self, ctx: &LoadCtx, tag: &OffChipTag, served_from: Level);

    /// Predictor name for reports.
    fn name(&self) -> &'static str;
}

/// A no-op predictor (the paper's baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoOffChip;

impl OffChipPredictor for NoOffChip {
    fn predict_load(&mut self, _ctx: &LoadCtx) -> OffChipTag {
        OffChipTag::none()
    }
    fn train_load(&mut self, _ctx: &LoadCtx, _tag: &OffChipTag, _served: Level) {}
    fn name(&self) -> &'static str {
        "none"
    }
}

/// A demand access observed by an L1D prefetcher (ChampSim's
/// `prefetcher_cache_operate`).
#[derive(Debug, Clone, Copy)]
pub struct DemandAccess {
    /// Issuing core.
    pub core: CoreId,
    /// Load/store PC.
    pub pc: u64,
    /// Virtual address (L1D prefetchers are virtually indexed).
    pub vaddr: u64,
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the access was a store.
    pub is_store: bool,
    /// Current cycle.
    pub cycle: Cycle,
}

/// An L1D prefetch candidate produced by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchCandidate {
    /// Target virtual address.
    pub vaddr: u64,
    /// Fill into L1D (`true`) or only into L2 (`false`).
    pub fill_l1: bool,
}

/// An L1D hardware prefetcher (IPCP, Berti, next-line, ...).
pub trait L1Prefetcher: Send {
    /// Observes a demand access; pushes any prefetch candidates into `out`.
    fn on_access(&mut self, access: &DemandAccess, out: &mut Vec<PrefetchCandidate>);

    /// Observes the completion of one of this prefetcher's fills
    /// (Berti uses this to measure timeliness).
    fn on_fill(&mut self, vaddr: u64, cycle: Cycle) {
        let _ = (vaddr, cycle);
    }

    /// Prefetcher name for reports.
    fn name(&self) -> &'static str;
}

/// A prefetcher that never prefetches.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoL1Prefetcher;

impl L1Prefetcher for NoL1Prefetcher {
    fn on_access(&mut self, _a: &DemandAccess, _out: &mut Vec<PrefetchCandidate>) {}
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Context for an L1D prefetch-filter decision (SLP).
#[derive(Debug, Clone, Copy)]
pub struct L1FilterCtx {
    /// Issuing core.
    pub core: CoreId,
    /// PC of the demand access that triggered the prefetch.
    pub trigger_pc: u64,
    /// Virtual address of the triggering demand.
    pub trigger_vaddr: u64,
    /// Prefetch target virtual address.
    pub pf_vaddr: u64,
    /// Prefetch target physical address (SLP uses physical features).
    pub pf_paddr: u64,
    /// FLP tag of the triggering demand (the leveling feature input).
    pub trigger_tag: OffChipTag,
    /// Current cycle.
    pub cycle: Cycle,
}

/// Filter metadata carried in the prefetch request (Table II: L1D MSHR
/// metadata) for training at completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilterTag {
    /// Perceptron sum at filter time.
    pub confidence: i32,
    /// Weight-table indices read at filter time.
    pub indices: FeatureIndices,
    /// False when no filter was consulted.
    pub valid: bool,
}

/// An L1D prefetch filter (SLP or none).
pub trait L1PrefetchFilter: Send {
    /// Consulted when the L1D prefetcher issues a candidate. Returns
    /// `(issue, tag)`: when `issue` is false the prefetch is discarded.
    fn filter(&mut self, ctx: &L1FilterCtx) -> (bool, FilterTag);

    /// Called when an issued prefetch completes; `served_from` is the level
    /// that provided the data (training label: positive iff DRAM).
    fn train(&mut self, ctx: &L1FilterCtx, tag: &FilterTag, served_from: Level);

    /// Filter name for reports.
    fn name(&self) -> &'static str;
}

/// A pass-through filter.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoL1Filter;

impl L1PrefetchFilter for NoL1Filter {
    fn filter(&mut self, _ctx: &L1FilterCtx) -> (bool, FilterTag) {
        (true, FilterTag::default())
    }
    fn train(&mut self, _ctx: &L1FilterCtx, _tag: &FilterTag, _served: Level) {}
    fn name(&self) -> &'static str {
        "none"
    }
}

/// A demand access observed by the L2 prefetcher (physical addresses).
#[derive(Debug, Clone, Copy)]
pub struct L2Access {
    /// Issuing core.
    pub core: CoreId,
    /// PC of the originating demand (0 for writebacks).
    pub pc: u64,
    /// Physical address.
    pub paddr: u64,
    /// Whether the access hit in the L2.
    pub hit: bool,
    /// Current cycle.
    pub cycle: Cycle,
}

/// An L2 prefetch candidate (SPP), with the internal metadata PPF's
/// features consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2PrefetchCandidate {
    /// Target physical address.
    pub paddr: u64,
    /// Fill into L2 (`false`) or only into the LLC (`true`).
    pub fill_llc_only: bool,
    /// SPP signature that generated this candidate.
    pub signature: u32,
    /// SPP path confidence (percent, 0..=100).
    pub confidence: u32,
    /// Lookahead depth at which the candidate was produced.
    pub depth: u8,
}

/// An L2 hardware prefetcher (SPP).
pub trait L2Prefetcher: Send {
    /// Observes an L2 demand access; pushes candidates into `out`.
    fn on_access(&mut self, access: &L2Access, out: &mut Vec<L2PrefetchCandidate>);

    /// Prefetcher name for reports.
    fn name(&self) -> &'static str;
}

/// A no-op L2 prefetcher.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoL2Prefetcher;

impl L2Prefetcher for NoL2Prefetcher {
    fn on_access(&mut self, _a: &L2Access, _out: &mut Vec<L2PrefetchCandidate>) {}
    fn name(&self) -> &'static str {
        "none"
    }
}

/// An L2 prefetch filter (PPF). Unlike SLP, PPF trains on prefetch
/// *usefulness* (demand hit vs. unused eviction) and keeps a reject table
/// to learn from filtered-then-demanded lines.
pub trait L2PrefetchFilter: Send {
    /// Consulted per SPP candidate; `trigger` is the access that produced
    /// it. Returns true to issue.
    fn filter(&mut self, trigger: &L2Access, candidate: &L2PrefetchCandidate) -> bool;

    /// A prefetched line was referenced by a demand (useful).
    fn on_useful(&mut self, paddr: u64);

    /// A prefetched line was evicted without use (useless).
    fn on_useless(&mut self, paddr: u64);

    /// A demand missed; PPF checks its reject table to learn from wrongly
    /// rejected prefetches.
    fn on_demand_miss(&mut self, paddr: u64);

    /// Filter name for reports.
    fn name(&self) -> &'static str;
}

/// A pass-through L2 filter.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoL2Filter;

impl L2PrefetchFilter for NoL2Filter {
    fn filter(&mut self, _t: &L2Access, _c: &L2PrefetchCandidate) -> bool {
        true
    }
    fn on_useful(&mut self, _paddr: u64) {}
    fn on_useless(&mut self, _paddr: u64) {}
    fn on_demand_miss(&mut self, _paddr: u64) {}
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_tag_is_not_offchip() {
        let t = OffChipTag::none();
        assert!(!t.predicted_offchip());
        assert!(!t.valid);
    }

    #[test]
    fn from_decision_preserves_all_three_decisions() {
        for d in [
            OffChipDecision::IssueNow,
            OffChipDecision::IssueOnL1dMiss,
            OffChipDecision::NoIssue,
        ] {
            let t = OffChipTag::from_decision(d);
            assert_eq!(t.decision, d, "decision must round-trip");
            assert!(t.valid);
            assert_eq!(
                t.predicted_offchip(),
                !matches!(d, OffChipDecision::NoIssue)
            );
        }
    }

    #[test]
    fn delayed_decision_counts_as_offchip() {
        let t = OffChipTag {
            decision: OffChipDecision::IssueOnL1dMiss,
            ..OffChipTag::none()
        };
        assert!(t.predicted_offchip());
    }

    #[test]
    fn null_plugins_are_inert() {
        let ctx = LoadCtx {
            core: 0,
            pc: 0x400,
            vaddr: 0x1000,
            cycle: 5,
        };
        let mut p = NoOffChip;
        assert!(!p.predict_load(&ctx).predicted_offchip());
        let mut f = NoL1Filter;
        let fctx = L1FilterCtx {
            core: 0,
            trigger_pc: 0,
            trigger_vaddr: 0,
            pf_vaddr: 0x40,
            pf_paddr: 0x40,
            trigger_tag: OffChipTag::none(),
            cycle: 0,
        };
        assert!(f.filter(&fctx).0);
        let mut pf = NoL1Prefetcher;
        let mut out = Vec::new();
        pf.on_access(
            &DemandAccess {
                core: 0,
                pc: 0,
                vaddr: 0,
                hit: true,
                is_store: false,
                cycle: 0,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }
}
