//! Virtual memory: per-core page tables with randomized first-touch frame
//! allocation, and a two-level TLB hierarchy with a fixed-latency walker.
//!
//! Each core gets its own address space (the paper's multi-core mixes are
//! independent processes), so identical virtual addresses on different
//! cores map to distinct physical frames.

use std::collections::HashMap;

use crate::config::TlbConfig;
use crate::types::{CoreId, Cycle, PAGE_SIZE};

/// Physical frame bits (2^22 frames × 4 KB = 16 GB, Table III's DRAM size).
const FRAME_BITS: u32 = 22;
const FRAME_MASK: u64 = (1 << FRAME_BITS) - 1;

/// Per-core page table with deterministic, scattered frame allocation.
///
/// Frames are assigned by a bijective odd-multiplier permutation of an
/// allocation counter, so consecutive virtual pages land on unrelated
/// DRAM rows — mirroring ChampSim's randomized `vmem`.
#[derive(Debug)]
pub struct PageTable {
    maps: Vec<HashMap<u64, u64>>,
    next: u64,
}

impl PageTable {
    /// Creates page tables for `cores` address spaces.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            maps: vec![HashMap::new(); cores],
            next: 1, // frame 0 reserved
        }
    }

    /// Translates a virtual address, allocating a frame on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or physical memory is exhausted.
    pub fn translate(&mut self, core: CoreId, vaddr: u64) -> u64 {
        let vpage = vaddr / PAGE_SIZE;
        let next = &mut self.next;
        let frame = *self.maps[core].entry(vpage).or_insert_with(|| {
            let f = (next.wrapping_mul(0x9e37_79b1)) & FRAME_MASK;
            *next += 1;
            assert!(*next < (1 << FRAME_BITS), "physical memory exhausted");
            f
        });
        frame * PAGE_SIZE + vaddr % PAGE_SIZE
    }

    /// Number of pages mapped for `core`.
    #[must_use]
    pub fn mapped_pages(&self, core: CoreId) -> usize {
        self.maps[core].len()
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    valid: bool,
    vpage: u64,
    frame: u64,
    stamp: u64,
}

/// A set-associative TLB with LRU replacement.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<TlbEntry>,
    clock: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "TLB sets must be a power of two"
        );
        Self {
            cfg,
            entries: vec![
                TlbEntry {
                    valid: false,
                    vpage: 0,
                    frame: 0,
                    stamp: 0,
                };
                cfg.sets * cfg.ways
            ],
            clock: 0,
        }
    }

    /// Hit latency of this TLB.
    #[must_use]
    pub fn latency(&self) -> Cycle {
        self.cfg.latency
    }

    fn set_of(&self, vpage: u64) -> usize {
        (vpage % self.cfg.sets as u64) as usize
    }

    /// Looks up `vpage`; returns the frame on a hit.
    pub fn lookup(&mut self, vpage: u64) -> Option<u64> {
        self.clock += 1;
        let base = self.set_of(vpage) * self.cfg.ways;
        for w in 0..self.cfg.ways {
            let e = &mut self.entries[base + w];
            if e.valid && e.vpage == vpage {
                e.stamp = self.clock;
                return Some(e.frame);
            }
        }
        None
    }

    /// Installs a translation, evicting the LRU way.
    pub fn fill(&mut self, vpage: u64, frame: u64) {
        self.clock += 1;
        let base = self.set_of(vpage) * self.cfg.ways;
        let way = (0..self.cfg.ways)
            .min_by_key(|&w| {
                let e = &self.entries[base + w];
                if e.valid {
                    e.stamp
                } else {
                    0
                }
            })
            .expect("nonzero ways");
        self.entries[base + way] = TlbEntry {
            valid: true,
            vpage,
            frame,
            stamp: self.clock,
        };
    }
}

/// The result of one translation: the physical address plus the latency the
/// TLB hierarchy added.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical byte address.
    pub paddr: u64,
    /// Cycles spent in DTLB/STLB/page walker.
    pub latency: Cycle,
    /// True when the DTLB missed.
    pub dtlb_miss: bool,
    /// True when the STLB also missed (a page walk happened).
    pub stlb_miss: bool,
}

/// Per-core MMU: DTLB + STLB in front of the shared page table.
#[derive(Debug)]
pub struct Mmu {
    dtlb: Tlb,
    stlb: Tlb,
    walk_latency: Cycle,
}

impl Mmu {
    /// Creates the MMU from TLB configs and a fixed page-walk latency.
    #[must_use]
    pub fn new(dtlb: TlbConfig, stlb: TlbConfig, walk_latency: Cycle) -> Self {
        Self {
            dtlb: Tlb::new(dtlb),
            stlb: Tlb::new(stlb),
            walk_latency,
        }
    }

    /// Translates `vaddr` for `core`, modelling the TLB hierarchy latency.
    pub fn translate(&mut self, pt: &mut PageTable, core: CoreId, vaddr: u64) -> Translation {
        let vpage = vaddr / PAGE_SIZE;
        let off = vaddr % PAGE_SIZE;
        if let Some(frame) = self.dtlb.lookup(vpage) {
            return Translation {
                paddr: frame * PAGE_SIZE + off,
                latency: self.dtlb.latency(),
                dtlb_miss: false,
                stlb_miss: false,
            };
        }
        if let Some(frame) = self.stlb.lookup(vpage) {
            self.dtlb.fill(vpage, frame);
            return Translation {
                paddr: frame * PAGE_SIZE + off,
                latency: self.dtlb.latency() + self.stlb.latency(),
                dtlb_miss: true,
                stlb_miss: false,
            };
        }
        let paddr = pt.translate(core, vaddr);
        let frame = paddr / PAGE_SIZE;
        self.stlb.fill(vpage, frame);
        self.dtlb.fill(vpage, frame);
        Translation {
            paddr,
            latency: self.dtlb.latency() + self.stlb.latency() + self.walk_latency,
            dtlb_miss: true,
            stlb_miss: true,
        }
    }

    /// Translates without touching TLB state or charging latency
    /// (prefetch-address translation, as with ChampSim's `va_prefetch`).
    pub fn translate_untimed(&self, pt: &mut PageTable, core: CoreId, vaddr: u64) -> u64 {
        pt.translate(core, vaddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn mmu() -> Mmu {
        let cfg = SystemConfig::cascade_lake(1);
        Mmu::new(cfg.dtlb, cfg.stlb, cfg.core.page_walk_latency)
    }

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new(1);
        let a = pt.translate(0, 0x1234_5678);
        let b = pt.translate(0, 0x1234_5678);
        assert_eq!(a, b);
        assert_eq!(a % PAGE_SIZE, 0x678);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new(1);
        let mut frames = std::collections::HashSet::new();
        for p in 0..1000u64 {
            let pa = pt.translate(0, p * PAGE_SIZE);
            assert!(frames.insert(pa / PAGE_SIZE), "frame reuse at page {p}");
        }
    }

    #[test]
    fn cores_have_separate_address_spaces() {
        let mut pt = PageTable::new(2);
        let a = pt.translate(0, 0x8000);
        let b = pt.translate(1, 0x8000);
        assert_ne!(a, b);
    }

    #[test]
    fn frames_are_scattered() {
        let mut pt = PageTable::new(1);
        let a = pt.translate(0, 0) / PAGE_SIZE;
        let b = pt.translate(0, PAGE_SIZE) / PAGE_SIZE;
        assert!(
            a.abs_diff(b) > 1,
            "consecutive vpages map to adjacent frames"
        );
    }

    #[test]
    fn tlb_hits_after_fill() {
        let mut mmu = mmu();
        let mut pt = PageTable::new(1);
        let t1 = mmu.translate(&mut pt, 0, 0x4_2000);
        assert!(t1.stlb_miss, "cold access must walk");
        let t2 = mmu.translate(&mut pt, 0, 0x4_2008);
        assert!(!t2.dtlb_miss);
        assert_eq!(t2.latency, 1);
        assert_eq!(t2.paddr, t1.paddr + 8);
    }

    #[test]
    fn dtlb_capacity_eviction_falls_to_stlb() {
        let mut mmu = mmu();
        let mut pt = PageTable::new(1);
        // 64-entry DTLB: touch 256 pages, then revisit the first.
        for p in 0..256u64 {
            mmu.translate(&mut pt, 0, p * PAGE_SIZE);
        }
        let t = mmu.translate(&mut pt, 0, 0);
        assert!(t.dtlb_miss, "page 0 must have been evicted from the DTLB");
        assert!(!t.stlb_miss, "page 0 must still be in the 1536-entry STLB");
    }

    #[test]
    fn untimed_translation_matches_timed() {
        let mut mmu = mmu();
        let mut pt = PageTable::new(1);
        let t = mmu.translate(&mut pt, 0, 0x9000);
        let pa = mmu.translate_untimed(&mut pt, 0, 0x9010);
        assert_eq!(pa, t.paddr + 0x10);
    }
}
