//! Set-associative cache with MSHRs, split demand/prefetch queues,
//! non-inclusive fills and per-line prefetch bookkeeping.
//!
//! The engine orchestrates levels explicitly: [`Cache::tick`] drains the
//! input queues and reports hits/misses; the engine routes misses
//! downstream and walks completions back up through [`Cache::fill`].

use std::collections::VecDeque;

use crate::config::CacheConfig;
use crate::replacement::{Lru, ReplCtx, ReplacementPolicy};
use crate::request::{ReqKind, Request};
use crate::stats::CacheStats;
use crate::types::{CoreId, Cycle, Level, LINE_SIZE};

/// State of one cache line.
#[derive(Debug, Clone, Copy)]
struct LineState {
    valid: bool,
    /// Full line address (not just the tag bits; simpler and equivalent).
    line: u64,
    dirty: bool,
    /// Filled by a prefetch and not yet referenced by a demand.
    prefetched: bool,
    pf_useful: bool,
    /// Level that served the prefetch fill.
    pf_served: Level,
    /// True when the prefetch was issued by an L1 prefetcher.
    pf_origin_l1: bool,
    /// Core whose prefetcher issued the fill (for shared-LLC attribution).
    pf_core: CoreId,
}

impl LineState {
    fn empty() -> Self {
        Self {
            valid: false,
            line: 0,
            dirty: false,
            prefetched: false,
            pf_useful: false,
            pf_served: Level::Dram,
            pf_origin_l1: false,
            pf_core: 0,
        }
    }
}

/// A miss-status holding register: one outstanding line with its waiters.
#[derive(Debug)]
struct Mshr {
    line: u64,
    waiters: Vec<Request>,
}

/// A prefetched line that left the cache (or the simulation ended) without
/// being referenced; feeds Figure 5 and the PPF training hooks.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchEviction {
    /// Physical line address (bytes).
    pub paddr: u64,
    /// Level that had served the prefetch.
    pub served: Level,
    /// True if issued by an L1 prefetcher, false for L2 (SPP).
    pub origin_l1: bool,
    /// Core that issued the prefetch.
    pub core: CoreId,
    /// True when the line was referenced by a demand before leaving.
    pub was_useful: bool,
}

/// Everything a [`Cache::tick`] produced, for the engine to route.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Requests served by this level (hit). `served_from` is set.
    pub hits: Vec<Request>,
    /// Requests that missed and must be forwarded downstream
    /// (an MSHR has been allocated here).
    pub forwards: Vec<Request>,
    /// Accesses observed for prefetcher training: demands at every level,
    /// plus forwarded prefetches at non-origin levels (ChampSim's
    /// `cache_operate` semantics — SPP must see the L1 prefetch stream).
    pub demand_accesses: Vec<(Request, bool)>,
    /// Demand hits on prefetched lines: (paddr, origin_l1, served, core).
    pub pf_useful: Vec<PrefetchEviction>,
    /// Demand misses (paddr) — PPF reject-table training.
    pub demand_misses: Vec<u64>,
    /// Prefetch requests that hit and were therefore dropped.
    pub pf_dropped_hit: u64,
}

impl TickOutput {
    /// Clears every field while keeping allocated capacity — the engine
    /// passes one reusable `TickOutput` to every component tick, so the
    /// steady-state hot loop never reallocates these vectors.
    pub fn clear(&mut self) {
        self.hits.clear();
        self.forwards.clear();
        self.demand_accesses.clear();
        self.pf_useful.clear();
        self.demand_misses.clear();
        self.pf_dropped_hit = 0;
    }
}

/// Result of a [`Cache::fill`].
#[derive(Debug, Default)]
pub struct FillOutput {
    /// Waiters released by the fill; `served_from` is set on each.
    pub waiters: Vec<Request>,
    /// Dirty victim that must be written back downstream (paddr).
    pub writeback: Option<u64>,
    /// Prefetched line evicted by this fill.
    pub evicted_prefetch: Option<PrefetchEviction>,
    /// Line address of any valid victim displaced by this fill (dirty or
    /// clean) — feeds the optional LLC victim cache.
    pub evicted_line: Option<u64>,
}

/// A set-associative, non-inclusive, write-back cache level.
pub struct Cache {
    name: String,
    level: Level,
    cfg: CacheConfig,
    lines: Vec<LineState>,
    repl: Box<dyn ReplacementPolicy>,
    mshrs: Vec<Mshr>,
    demand_q: VecDeque<(Cycle, Request)>,
    prefetch_q: VecDeque<(Cycle, Request)>,
    /// Recycled MSHR waiter buffers: resolved fills return their
    /// (cleared) `Vec<Request>` via [`Cache::recycle_waiters`] and fresh
    /// MSHRs reuse them, so steady-state misses allocate nothing.
    free_waiters: Vec<Vec<Request>>,
    /// Counters.
    pub stats: CacheStats,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("name", &self.name)
            .field("level", &self.level)
            .field("mshrs_in_use", &self.mshrs.len())
            .finish_non_exhaustive()
    }
}

impl Cache {
    /// Creates a cache level with LRU replacement.
    #[must_use]
    pub fn new(name: impl Into<String>, level: Level, cfg: CacheConfig) -> Self {
        let repl = Box::new(Lru::new(cfg.sets, cfg.ways));
        Self::with_replacement(name, level, cfg, repl)
    }

    /// Creates a cache level with an explicit replacement policy.
    #[must_use]
    pub fn with_replacement(
        name: impl Into<String>,
        level: Level,
        cfg: CacheConfig,
        repl: Box<dyn ReplacementPolicy>,
    ) -> Self {
        Self {
            name: name.into(),
            level,
            cfg,
            lines: vec![LineState::empty(); cfg.sets * cfg.ways],
            repl,
            mshrs: Vec::with_capacity(cfg.mshrs),
            demand_q: VecDeque::new(),
            prefetch_q: VecDeque::new(),
            free_waiters: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The level this cache sits at.
    #[must_use]
    pub fn level(&self) -> Level {
        self.level
    }

    /// The cache's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.cfg.sets as u64) as usize
    }

    fn way_of(&self, line: u64) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways).find(|&w| {
            let l = &self.lines[base + w];
            l.valid && l.line == line
        })
    }

    /// True when `paddr`'s line is present.
    #[must_use]
    pub fn probe(&self, paddr: u64) -> bool {
        self.way_of(paddr / LINE_SIZE).is_some()
    }

    /// True when an MSHR is outstanding for `paddr`'s line.
    #[must_use]
    pub fn has_mshr(&self, paddr: u64) -> bool {
        let line = paddr / LINE_SIZE;
        self.mshrs.iter().any(|m| m.line == line)
    }

    /// Number of MSHRs in use.
    #[must_use]
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Queue a demand (load/RFO) or writeback-driven access arriving `now`;
    /// it becomes visible after the lookup latency.
    pub fn push_demand(&mut self, req: Request, now: Cycle) {
        self.demand_q.push_back((now + self.cfg.latency, req));
    }

    /// Queue a prefetch request. Returns false (dropping the request) when
    /// the prefetch queue is full.
    pub fn push_prefetch(&mut self, req: Request, now: Cycle) -> bool {
        if self.prefetch_q.len() >= self.cfg.prefetch_queue {
            return false;
        }
        self.prefetch_q.push_back((now + self.cfg.latency, req));
        true
    }

    /// Processes all ready queue entries for this cycle. Allocating
    /// convenience wrapper around [`Cache::tick_into`] for tests and
    /// simple callers.
    pub fn tick(&mut self, now: Cycle) -> TickOutput {
        let mut out = TickOutput::default();
        self.tick_into(now, &mut out);
        out
    }

    /// Processes all ready queue entries for this cycle, appending to
    /// `out`. The engine passes one cleared, reusable scratch buffer so
    /// the per-cycle path never allocates here.
    pub fn tick_into(&mut self, now: Cycle, out: &mut TickOutput) {
        // Demands first, then prefetches, mirroring ChampSim's priority.
        self.drain_queue(now, /*demand=*/ true, out);
        self.drain_queue(now, /*demand=*/ false, out);
    }

    fn drain_queue(&mut self, now: Cycle, demand: bool, out: &mut TickOutput) {
        loop {
            let q = if demand {
                &mut self.demand_q
            } else {
                &mut self.prefetch_q
            };
            let Some(&(ready, _)) = q.front() else { break };
            if ready > now {
                break;
            }
            // Pop-then-commit: on MSHR exhaustion the lookup hands the
            // request back and it returns to the queue front for a retry
            // next cycle — head-of-line order preserved, nothing cloned.
            let (_, req) = q.pop_front().expect("checked nonempty");
            if let Err(req) = self.lookup(req, now, out) {
                self.stats.mshr_stalls += 1;
                let q = if demand {
                    &mut self.demand_q
                } else {
                    &mut self.prefetch_q
                };
                q.push_front((ready, req));
                break;
            }
        }
    }

    /// Looks up one request. Hands the request back (`Err`) when it could
    /// not be handled this cycle (MSHR pressure) and must be retried.
    #[allow(clippy::result_large_err)] // by-value retry handback, no boxing
    fn lookup(
        &mut self,
        mut req: Request,
        _now: Cycle,
        out: &mut TickOutput,
    ) -> Result<(), Request> {
        let line = req.line();
        let set = self.set_of(line);
        let is_demand = req.kind.is_demand();
        // A prefetch is "at its origin" in the cache level that issued it;
        // only there does a hit mean the prefetch is redundant. Forwarded
        // prefetches that hit at a lower level must respond upstream to
        // resolve the origin's MSHR.
        let at_origin = match req.kind {
            ReqKind::PrefetchL1 { .. } => self.level == Level::L1d,
            ReqKind::PrefetchL2 { .. } => self.level == Level::L2,
            _ => false,
        };
        if let Some(way) = self.way_of(line) {
            // Hit.
            self.repl
                .on_access_ctx(set, way, &ReplCtx { line, pc: req.pc });
            let l = &mut self.lines[set * self.cfg.ways + way];
            if is_demand {
                self.stats.demand_hits += 1;
                if req.kind == ReqKind::Rfo {
                    l.dirty = true;
                }
                if l.prefetched && !l.pf_useful {
                    l.pf_useful = true;
                    self.stats.prefetch_useful += 1;
                    out.pf_useful.push(PrefetchEviction {
                        paddr: line * LINE_SIZE,
                        served: l.pf_served,
                        origin_l1: l.pf_origin_l1,
                        core: l.pf_core,
                        was_useful: true,
                    });
                }
                req.served_from = Some(self.level);
                out.demand_accesses.push((req.clone(), true));
                out.hits.push(req);
            } else if at_origin {
                // Redundant prefetch: dropped silently.
                self.stats.prefetch_hits += 1;
                out.pf_dropped_hit += 1;
            } else {
                // Forwarded prefetch served here: respond upstream.
                self.stats.prefetch_hits += 1;
                req.served_from = Some(self.level);
                out.demand_accesses.push((req.clone(), true));
                out.hits.push(req);
            }
            return Ok(());
        }
        // Miss. Merge into an existing MSHR when possible. A merged request
        // did not initiate any downstream traffic — it is effectively
        // served by this level (this is the label off-chip predictors and
        // prefetch filters train on: "did this access require a new DRAM
        // transaction?").
        if let Some(m) = self.mshrs.iter_mut().find(|m| m.line == line) {
            if req.served_from.is_none() {
                req.served_from = Some(self.level);
            }
            if is_demand {
                self.stats.demand_misses += 1;
                out.demand_accesses.push((req.clone(), false));
                out.demand_misses.push(line * LINE_SIZE);
            } else {
                self.stats.prefetch_misses += 1;
                if !at_origin {
                    out.demand_accesses.push((req.clone(), false));
                }
            }
            m.waiters.push(req);
            return Ok(());
        }
        // Need a fresh MSHR.
        if self.mshrs.len() >= self.cfg.mshrs {
            return Err(req);
        }
        if is_demand {
            self.stats.demand_misses += 1;
            out.demand_accesses.push((req.clone(), false));
            out.demand_misses.push(line * LINE_SIZE);
        } else {
            self.stats.prefetch_misses += 1;
            if !at_origin {
                out.demand_accesses.push((req.clone(), false));
            }
        }
        let mut waiters = self.free_waiters.pop().unwrap_or_default();
        waiters.push(req.clone());
        self.mshrs.push(Mshr { line, waiters });
        out.forwards.push(req);
        Ok(())
    }

    /// Returns a consumed fill's waiter buffer to the MSHR freelist. The
    /// engine calls this after routing a [`FillOutput`]'s waiters so the
    /// next MSHR allocation reuses the capacity instead of allocating.
    pub fn recycle_waiters(&mut self, mut v: Vec<Request>) {
        if v.capacity() > 0 && self.free_waiters.len() < self.cfg.mshrs.max(8) {
            v.clear();
            self.free_waiters.push(v);
        }
    }

    /// Data for `line` arrived from downstream (`served_from` = providing
    /// level). Resolves the MSHR, inserts the line when a waiter wants a
    /// fill at this level, and releases the waiters.
    pub fn fill(&mut self, line: u64, served_from: Level, _now: Cycle) -> FillOutput {
        let mut out = FillOutput::default();
        let Some(pos) = self.mshrs.iter().position(|m| m.line == line) else {
            return out;
        };
        let mshr = self.mshrs.swap_remove(pos);
        let my_rank = self.level.index();
        let wants_fill = mshr
            .waiters
            .iter()
            .any(|w| w.kind.fill_level().index() <= my_rank);
        let any_demand = mshr.waiters.iter().any(|w| w.kind.is_demand());
        let make_dirty =
            mshr.waiters.iter().any(|w| w.kind == ReqKind::Rfo) && self.level == Level::L1d;
        if wants_fill {
            let pf_meta = if any_demand {
                None
            } else {
                mshr.waiters
                    .iter()
                    .find(|w| w.kind.is_prefetch())
                    .map(|w| (matches!(w.kind, ReqKind::PrefetchL1 { .. }), w.core))
            };
            // The filling PC (for signature-based replacement): prefer the
            // first demand waiter's PC.
            let fill_pc = mshr
                .waiters
                .iter()
                .find(|w| w.kind.is_demand())
                .or_else(|| mshr.waiters.first())
                .map_or(0, |w| w.pc);
            let (wb, ev, victim_line) =
                self.insert(line, served_from, make_dirty, pf_meta, fill_pc);
            out.writeback = wb;
            out.evicted_prefetch = ev;
            out.evicted_line = victim_line;
            if pf_meta.is_some() {
                self.stats.prefetch_fills += 1;
            }
        }
        out.waiters = mshr.waiters;
        for w in &mut out.waiters {
            if w.served_from.is_none() {
                w.served_from = Some(served_from);
            }
        }
        out
    }

    /// Inserts `line`; returns (writeback paddr, evicted-prefetch event,
    /// victim line address).
    fn insert(
        &mut self,
        line: u64,
        served_from: Level,
        dirty: bool,
        pf_meta: Option<(bool, CoreId)>,
        fill_pc: u64,
    ) -> (Option<u64>, Option<PrefetchEviction>, Option<u64>) {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        let way = (0..self.cfg.ways)
            .find(|&w| !self.lines[base + w].valid)
            .unwrap_or_else(|| self.repl.victim(set, self.cfg.ways));
        let victim = self.lines[base + way];
        let mut writeback = None;
        let mut evicted = None;
        let mut victim_line = None;
        if victim.valid {
            victim_line = Some(victim.line);
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = Some(victim.line * LINE_SIZE);
            }
            if victim.prefetched && !victim.pf_useful {
                self.stats.prefetch_useless += 1;
                evicted = Some(PrefetchEviction {
                    paddr: victim.line * LINE_SIZE,
                    served: victim.pf_served,
                    origin_l1: victim.pf_origin_l1,
                    core: victim.pf_core,
                    was_useful: false,
                });
            }
        }
        self.lines[base + way] = LineState {
            valid: true,
            line,
            dirty,
            prefetched: pf_meta.is_some(),
            pf_useful: false,
            pf_served: served_from,
            pf_origin_l1: pf_meta.is_some_and(|(l1, _)| l1),
            pf_core: pf_meta.map_or(0, |(_, c)| c),
        };
        self.repl
            .on_fill_ctx(set, way, &ReplCtx { line, pc: fill_pc });
        (writeback, evicted, victim_line)
    }

    /// A writeback from upstream arrives with data: update in place on hit,
    /// otherwise insert the (dirty) line. Returns any cascaded writeback,
    /// prefetch eviction and victim line (waiters are always empty).
    pub fn writeback_arrive(&mut self, paddr: u64) -> FillOutput {
        let line = paddr / LINE_SIZE;
        if let Some(way) = self.way_of(line) {
            let set = self.set_of(line);
            self.repl.on_access(set, way);
            self.lines[set * self.cfg.ways + way].dirty = true;
            return FillOutput::default();
        }
        let (writeback, evicted_prefetch, evicted_line) =
            self.insert(line, Level::Dram, true, None, 0);
        FillOutput {
            waiters: Vec::new(),
            writeback,
            evicted_prefetch,
            evicted_line,
        }
    }

    /// Direct store hit attempt (L1D write path). Returns true when the
    /// line was present and marked dirty; false means an RFO is needed.
    pub fn store_hit(&mut self, paddr: u64) -> bool {
        let line = paddr / LINE_SIZE;
        if let Some(way) = self.way_of(line) {
            let set = self.set_of(line);
            self.repl.on_access(set, way);
            let l = &mut self.lines[set * self.cfg.ways + way];
            l.dirty = true;
            if l.prefetched && !l.pf_useful {
                l.pf_useful = true;
                self.stats.prefetch_useful += 1;
            }
            self.stats.demand_hits += 1;
            return true;
        }
        false
    }

    /// Forgets the prefetch provenance of every resident line. Called at
    /// the warmup/measurement boundary so that only prefetches filled
    /// inside the measured window can produce useful/useless outcomes.
    pub fn clear_prefetch_marks(&mut self) {
        for l in &mut self.lines {
            l.prefetched = false;
            l.pf_useful = false;
        }
    }

    /// Sweeps the array at end of simulation, reporting prefetched-but-
    /// never-used lines (they count as useless in Figures 5/12).
    pub fn drain_prefetch_residue(&mut self) -> Vec<PrefetchEviction> {
        let mut out = Vec::new();
        for l in &mut self.lines {
            if l.valid && l.prefetched && !l.pf_useful {
                self.stats.prefetch_useless += 1;
                out.push(PrefetchEviction {
                    paddr: l.line * LINE_SIZE,
                    served: l.pf_served,
                    origin_l1: l.pf_origin_l1,
                    core: l.pf_core,
                    was_useful: false,
                });
                l.prefetched = false;
            }
        }
        out
    }

    /// Number of pending queue entries (for quiescence detection).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.demand_q.len() + self.prefetch_q.len() + self.mshrs.len()
    }

    /// Queued demand accesses waiting out the lookup latency (or an MSHR
    /// stall), for deadlock diagnostics.
    #[must_use]
    pub fn demand_queue_len(&self) -> usize {
        self.demand_q.len()
    }

    /// Queued prefetch requests, for deadlock diagnostics.
    #[must_use]
    pub fn prefetch_queue_len(&self) -> usize {
        self.prefetch_q.len()
    }

    /// Conservative wake-up time for the event engine: the earliest cycle
    /// at which [`Cache::tick`] could process a queue entry. Each queue
    /// serves its front entry first (head-of-line order is part of the
    /// model), so the wake-up is the earlier of the two front ready
    /// times; a front entry stalled on MSHR pressure has a ready time in
    /// the past and retries every cycle. `None` means both queues are
    /// empty — outstanding MSHRs alone need no ticking, they resolve via
    /// [`Cache::fill`] when downstream data arrives.
    #[must_use]
    pub fn next_ready(&self) -> Option<Cycle> {
        let d = self.demand_q.front().map(|&(ready, _)| ready);
        let p = self.prefetch_q.front().map(|&(ready, _)| ready);
        match (d, p) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }
}

/// A cache level as a scheduled component: ticking drains the ready queue
/// entries into the shared [`TickOutput`] (the engine routes hits,
/// forwards and prefetcher notifications), and the wake-up contract is
/// [`Cache::next_ready`].
impl tlp_events::Component for Cache {
    type Ctx = TickOutput;

    fn next_tick(&self, _now: Cycle) -> Option<Cycle> {
        self.next_ready()
    }

    fn tick(&mut self, now: Cycle, out: &mut TickOutput) -> Option<Cycle> {
        out.clear();
        Cache::tick_into(self, now, out);
        self.next_ready()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::hooks::OffChipTag;

    fn cache() -> Cache {
        let cfg = SystemConfig::test_tiny(1);
        Cache::new("L1D", Level::L1d, cfg.l1d)
    }

    fn load(id: u64, paddr: u64) -> Request {
        Request::demand_load(id, 0, 0x400, paddr, paddr, id, OffChipTag::none(), 0)
    }

    fn run_tick(c: &mut Cache, reqs: Vec<Request>, now: Cycle) -> TickOutput {
        for r in reqs {
            c.push_demand(r, now);
        }
        c.tick(now + 100)
    }

    #[test]
    fn cold_miss_allocates_mshr_and_forwards() {
        let mut c = cache();
        let out = run_tick(&mut c, vec![load(1, 0x1000)], 0);
        assert_eq!(out.forwards.len(), 1);
        assert_eq!(c.stats.demand_misses, 1);
        assert!(c.has_mshr(0x1000));
        assert_eq!(c.mshrs_in_use(), 1);
    }

    #[test]
    fn same_line_merges_into_mshr() {
        let mut c = cache();
        let out = run_tick(&mut c, vec![load(1, 0x1000), load(2, 0x1008)], 0);
        assert_eq!(out.forwards.len(), 1, "second miss should merge");
        assert_eq!(c.stats.demand_misses, 2);
        assert_eq!(c.mshrs_in_use(), 1);
    }

    #[test]
    fn fill_releases_all_waiters_and_inserts() {
        let mut c = cache();
        run_tick(&mut c, vec![load(1, 0x1000), load(2, 0x1010)], 0);
        let fill = c.fill(0x1000 / LINE_SIZE, Level::Dram, 50);
        assert_eq!(fill.waiters.len(), 2);
        // The MSHR creator is served by DRAM; the merged request initiated
        // no downstream traffic, so it is labeled as served by this level.
        assert_eq!(fill.waiters[0].served_from, Some(Level::Dram));
        assert_eq!(fill.waiters[1].served_from, Some(Level::L1d));
        assert!(c.probe(0x1000));
        assert_eq!(c.mshrs_in_use(), 0);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = cache();
        run_tick(&mut c, vec![load(1, 0x1000)], 0);
        c.fill(0x1000 / LINE_SIZE, Level::Dram, 50);
        let out = run_tick(&mut c, vec![load(3, 0x1020)], 100);
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.hits[0].served_from, Some(Level::L1d));
        assert_eq!(c.stats.demand_hits, 1);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut c = cache(); // 10 MSHRs in test_tiny's L1D
        let reqs: Vec<Request> = (0..12).map(|i| load(i, 0x10_000 + i * 64)).collect();
        let out = run_tick(&mut c, reqs, 0);
        assert_eq!(out.forwards.len(), 10);
        assert_eq!(c.mshrs_in_use(), 10);
        assert!(c.stats.mshr_stalls > 0);
        assert_eq!(c.pending(), 10 + 2, "two requests remain queued");
        // Fill one line; the stalled requests proceed next tick.
        c.fill(0x10_000 / LINE_SIZE, Level::Dram, 200);
        let out2 = c.tick(300);
        assert_eq!(out2.forwards.len(), 1);
    }

    #[test]
    fn eviction_writes_back_dirty_victim() {
        let mut c = cache(); // 8 sets, 2 ways
                             // Two lines in the same set, both dirtied via RFO fills.
        let s0 = 0u64;
        let line = |i: u64| (s0 + i * 8) * LINE_SIZE; // same set each 8 lines (8 sets)
        for (i, id) in [(0u64, 1u64), (1, 2)] {
            let mut r = Request::rfo(id, 0, 0, line(i), line(i), 0);
            r.served_from = None;
            c.push_demand(r, 0);
        }
        c.tick(100);
        c.fill(line(0) / LINE_SIZE, Level::Dram, 100);
        c.fill(line(1) / LINE_SIZE, Level::Dram, 100);
        // Third line maps to the same set: evicts the LRU dirty line.
        let mut r = Request::rfo(3, 0, 0, line(2), line(2), 200);
        r.served_from = None;
        c.push_demand(r, 200);
        c.tick(300);
        let fill = c.fill(line(2) / LINE_SIZE, Level::Dram, 300);
        assert_eq!(fill.writeback, Some(line(0)), "LRU dirty line written back");
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn prefetch_hit_is_dropped() {
        let mut c = cache();
        run_tick(&mut c, vec![load(1, 0x1000)], 0);
        c.fill(0x1000 / LINE_SIZE, Level::Dram, 50);
        let mut pf = load(9, 0x1000);
        pf.kind = ReqKind::PrefetchL1 { fill_l1: true };
        assert!(c.push_prefetch(pf, 100));
        let out = c.tick(200);
        assert_eq!(out.pf_dropped_hit, 1);
        assert!(out.hits.is_empty());
    }

    #[test]
    fn prefetch_fill_then_demand_hit_marks_useful() {
        let mut c = cache();
        let mut pf = load(9, 0x2000);
        pf.kind = ReqKind::PrefetchL1 { fill_l1: true };
        pf.lq_seq = None;
        c.push_prefetch(pf, 0);
        let out = c.tick(100);
        assert_eq!(out.forwards.len(), 1);
        c.fill(0x2000 / LINE_SIZE, Level::Dram, 100);
        assert_eq!(c.stats.prefetch_fills, 1);
        let out = run_tick(&mut c, vec![load(10, 0x2008)], 200);
        assert_eq!(out.hits.len(), 1);
        assert_eq!(out.pf_useful.len(), 1);
        assert_eq!(out.pf_useful[0].served, Level::Dram);
        assert!(out.pf_useful[0].origin_l1);
        assert_eq!(c.stats.prefetch_useful, 1);
    }

    #[test]
    fn unused_prefetch_counts_useless_on_drain() {
        let mut c = cache();
        let mut pf = load(9, 0x2000);
        pf.kind = ReqKind::PrefetchL1 { fill_l1: true };
        c.push_prefetch(pf, 0);
        c.tick(100);
        c.fill(0x2000 / LINE_SIZE, Level::Llc, 100);
        let residue = c.drain_prefetch_residue();
        assert_eq!(residue.len(), 1);
        assert_eq!(residue[0].served, Level::Llc);
        assert_eq!(c.stats.prefetch_useless, 1);
    }

    #[test]
    fn l2_fill_skipped_for_llc_only_prefetch() {
        let cfg = SystemConfig::test_tiny(1);
        let mut l2 = Cache::new("L2", Level::L2, cfg.l2);
        let mut pf = load(9, 0x3000);
        pf.kind = ReqKind::PrefetchL2 {
            fill_llc_only: true,
        };
        l2.push_prefetch(pf, 0);
        let out = l2.tick(100);
        assert_eq!(out.forwards.len(), 1);
        let fill = l2.fill(0x3000 / LINE_SIZE, Level::Dram, 200);
        assert_eq!(fill.waiters.len(), 1);
        assert!(!l2.probe(0x3000), "LLC-only prefetch must not fill L2");
    }

    #[test]
    fn demand_merge_upgrades_prefetch_fill() {
        let mut c = cache();
        let mut pf = load(9, 0x4000);
        pf.kind = ReqKind::PrefetchL1 { fill_l1: false };
        c.push_prefetch(pf, 0);
        c.tick(100);
        // A demand merges into the prefetch MSHR.
        c.push_demand(load(10, 0x4000), 150);
        c.tick(250);
        let fill = c.fill(0x4000 / LINE_SIZE, Level::Dram, 300);
        assert_eq!(fill.waiters.len(), 2);
        assert!(c.probe(0x4000), "demand waiter forces the L1 fill");
    }

    #[test]
    fn writeback_arrival_inserts_dirty() {
        let cfg = SystemConfig::test_tiny(1);
        let mut l2 = Cache::new("L2", Level::L2, cfg.l2);
        let out = l2.writeback_arrive(0x8000);
        assert_eq!(out.writeback, None);
        assert!(l2.probe(0x8000));
        // Hitting it again just refreshes.
        let out2 = l2.writeback_arrive(0x8000);
        assert_eq!(out2.writeback, None);
        assert_eq!(out2.evicted_line, None);
    }

    #[test]
    fn fill_reports_clean_victim_line() {
        let mut c = cache(); // 8 sets, 2 ways
        let line = |i: u64| i * 8 * LINE_SIZE; // all in set 0
        for i in 0..2u64 {
            run_tick(&mut c, vec![load(i, line(i))], 0);
            c.fill(line(i) / LINE_SIZE, Level::Dram, 50);
        }
        // Third fill in the same set displaces a clean line.
        run_tick(&mut c, vec![load(9, line(2))], 100);
        let fill = c.fill(line(2) / LINE_SIZE, Level::Dram, 150);
        assert_eq!(fill.writeback, None, "clean victim: no writeback");
        assert_eq!(fill.evicted_line, Some(0), "victim line must be reported");
    }

    #[test]
    fn store_hit_dirties_line() {
        let mut c = cache();
        run_tick(&mut c, vec![load(1, 0x1000)], 0);
        c.fill(0x1000 / LINE_SIZE, Level::Dram, 50);
        assert!(c.store_hit(0x1008));
        assert!(!c.store_hit(0x0999_9000), "store to absent line must miss");
    }
}
