//! Cache replacement policies.
//!
//! The paper's configuration uses LRU everywhere (Table III); the other
//! policies (SRRIP, DRRIP, SHiP-lite, Random) support the extension
//! ablation that checks TLP's gains are not an artifact of the LLC
//! replacement policy (the paper's §VII argues TLP is orthogonal to
//! replacement and bypassing work).

use serde::{Deserialize, Serialize};

/// Insertion/access context for context-sensitive policies (SHiP signs
/// lines by the PC of the filling request).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplCtx {
    /// Line address (paddr / 64).
    pub line: u64,
    /// PC of the request that caused the access/fill (0 when unknown,
    /// e.g. writebacks).
    pub pc: u64,
}

/// A replacement policy for one cache: chooses victims and observes
/// accesses. State is per-(set, way), owned by the policy.
pub trait ReplacementPolicy: Send {
    /// Called on every hit or fill to `(set, way)`.
    fn on_access(&mut self, set: usize, way: usize);

    /// Called when a line is filled into `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize);

    /// Context-carrying variant of [`ReplacementPolicy::on_access`];
    /// defaults to the context-free hook.
    fn on_access_ctx(&mut self, set: usize, way: usize, ctx: &ReplCtx) {
        let _ = ctx;
        self.on_access(set, way);
    }

    /// Context-carrying variant of [`ReplacementPolicy::on_fill`];
    /// defaults to the context-free hook.
    fn on_fill_ctx(&mut self, set: usize, way: usize, ctx: &ReplCtx) {
        let _ = ctx;
        self.on_fill(set, way);
    }

    /// Chooses a victim way within `set` among `ways` candidates
    /// (all valid).
    fn victim(&mut self, set: usize, ways: usize) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Which replacement policy a cache level uses (configuration knob for the
/// replacement-ablation experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplKind {
    /// True least-recently-used (the paper's Table III setting).
    Lru,
    /// Static re-reference interval prediction, 2-bit RRPVs.
    Srrip,
    /// Dynamic RRIP: SRRIP vs. BRRIP chosen by set-dueling.
    Drrip,
    /// SHiP-lite: signature-based hit prediction over SRRIP.
    ShipLite,
    /// Pseudo-random (deterministic xorshift).
    Random,
}

impl ReplKind {
    /// Every selectable policy, in report order.
    pub const ALL: [ReplKind; 5] = [
        ReplKind::Lru,
        ReplKind::Srrip,
        ReplKind::Drrip,
        ReplKind::ShipLite,
        ReplKind::Random,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplKind::Lru => "lru",
            ReplKind::Srrip => "srrip",
            ReplKind::Drrip => "drrip",
            ReplKind::ShipLite => "ship",
            ReplKind::Random => "random",
        }
    }

    /// Builds the policy for a `sets × ways` cache.
    #[must_use]
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplKind::Lru => Box::new(Lru::new(sets, ways)),
            ReplKind::Srrip => Box::new(Srrip::new(sets, ways)),
            ReplKind::Drrip => Box::new(Drrip::new(sets, ways)),
            ReplKind::ShipLite => Box::new(ShipLite::new(sets, ways)),
            ReplKind::Random => Box::new(RandomRepl::new(0x9e37_79b9)),
        }
    }
}

// Not derived via attribute: the default must stay pinned to the paper's
// Table III setting even if variant order changes.
#[allow(clippy::derivable_impls)]
impl Default for ReplKind {
    fn default() -> Self {
        ReplKind::Lru
    }
}

/// True least-recently-used replacement.
#[derive(Debug)]
pub struct Lru {
    stamp: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl Lru {
    /// Creates LRU state for `sets × ways` lines.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            stamp: vec![0; sets * ways],
            ways,
            clock: 0,
        }
    }
}

impl ReplacementPolicy for Lru {
    fn on_access(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamp[set * self.ways + way] = self.clock;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.on_access(set, way);
    }

    fn victim(&mut self, set: usize, ways: usize) -> usize {
        let base = set * self.ways;
        (0..ways)
            .min_by_key(|&w| self.stamp[base + w])
            .expect("ways must be nonzero")
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Static re-reference interval prediction (SRRIP), 2-bit RRPVs.
#[derive(Debug)]
pub struct Srrip {
    rrpv: Vec<u8>,
    ways: usize,
}

impl Srrip {
    const MAX: u8 = 3;

    /// Creates SRRIP state for `sets × ways` lines.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: vec![Self::MAX; sets * ways],
            ways,
        }
    }
}

/// Shared RRIP victim search: evict the first way at RRPV max, aging the
/// whole set until one exists.
fn rrip_victim(rrpv: &mut [u8], base: usize, ways: usize, max: u8) -> usize {
    loop {
        for w in 0..ways {
            if rrpv[base + w] == max {
                return w;
            }
        }
        for w in 0..ways {
            rrpv[base + w] += 1;
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_access(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = Self::MAX - 1;
    }

    fn victim(&mut self, set: usize, ways: usize) -> usize {
        rrip_victim(&mut self.rrpv, set * self.ways, ways, Self::MAX)
    }

    fn name(&self) -> &'static str {
        "srrip"
    }
}

/// Dynamic RRIP (Jaleel et al., ISCA 2010): set-dueling between SRRIP
/// insertion (RRPV = max−1) and bimodal BRRIP insertion (RRPV = max most of
/// the time, max−1 rarely). Leader sets train a PSEL counter; follower sets
/// use the winning policy.
#[derive(Debug)]
pub struct Drrip {
    rrpv: Vec<u8>,
    ways: usize,
    sets: usize,
    /// Saturating policy selector: ≥ 0 favours BRRIP, < 0 favours SRRIP.
    psel: i32,
    /// Deterministic counter implementing BRRIP's 1/32 long-insertion duty
    /// cycle.
    brrip_ctr: u32,
}

impl Drrip {
    const MAX: u8 = 3;
    const PSEL_BOUND: i32 = 512;
    /// One in `BRRIP_PERIOD` BRRIP insertions uses the long (max−1) RRPV.
    const BRRIP_PERIOD: u32 = 32;
    /// Every `LEADER_STRIDE`-th set leads for SRRIP; the next one for BRRIP.
    const LEADER_STRIDE: usize = 32;

    /// Creates DRRIP state for `sets × ways` lines.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: vec![Self::MAX; sets * ways],
            ways,
            sets,
            psel: 0,
            brrip_ctr: 0,
        }
    }

    /// Leader-set roles: `Some(true)` = SRRIP leader, `Some(false)` = BRRIP
    /// leader, `None` = follower.
    fn leader(&self, set: usize) -> Option<bool> {
        if self.sets < 2 * Self::LEADER_STRIDE {
            // Tiny caches: first set leads SRRIP, second BRRIP.
            return match set {
                0 => Some(true),
                1 => Some(false),
                _ => None,
            };
        }
        match set % Self::LEADER_STRIDE {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    fn use_srrip(&self, set: usize) -> bool {
        match self.leader(set) {
            Some(role) => role,
            None => self.psel < 0,
        }
    }

    /// The policy currently preferred by the selector (`true` = SRRIP).
    #[must_use]
    pub fn prefers_srrip(&self) -> bool {
        self.psel < 0
    }
}

impl ReplacementPolicy for Drrip {
    fn on_access(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        // A fill is a miss: leader sets charge their policy.
        match self.leader(set) {
            Some(true) => self.psel = (self.psel + 1).min(Self::PSEL_BOUND),
            Some(false) => self.psel = (self.psel - 1).max(-Self::PSEL_BOUND),
            None => {}
        }
        let rrpv = if self.use_srrip(set) {
            Self::MAX - 1
        } else {
            self.brrip_ctr = self.brrip_ctr.wrapping_add(1);
            if self.brrip_ctr.is_multiple_of(Self::BRRIP_PERIOD) {
                Self::MAX - 1
            } else {
                Self::MAX
            }
        };
        self.rrpv[set * self.ways + way] = rrpv;
    }

    fn victim(&mut self, set: usize, ways: usize) -> usize {
        rrip_victim(&mut self.rrpv, set * self.ways, ways, Self::MAX)
    }

    fn name(&self) -> &'static str {
        "drrip"
    }
}

/// SHiP-lite (Wu et al., MICRO 2011): a signature history counter table
/// (SHCT) predicts whether lines filled by a given PC signature are ever
/// re-referenced. Fills from "dead" signatures insert at distant RRPV;
/// re-references train the signature up, unreused evictions train it down.
#[derive(Debug)]
pub struct ShipLite {
    rrpv: Vec<u8>,
    /// Signature of the fill, per line.
    sig: Vec<u16>,
    /// Whether the line has been re-referenced since its fill.
    reused: Vec<bool>,
    /// 2-bit saturating counters indexed by signature.
    shct: Vec<u8>,
    ways: usize,
}

impl ShipLite {
    const MAX: u8 = 3;
    const SHCT_ENTRIES: usize = 16 * 1024;
    const SHCT_MAX: u8 = 3;

    /// Creates SHiP state for `sets × ways` lines.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: vec![Self::MAX; sets * ways],
            sig: vec![0; sets * ways],
            reused: vec![false; sets * ways],
            // Start weakly "live" so cold signatures behave like SRRIP.
            shct: vec![1; Self::SHCT_ENTRIES],
            ways,
        }
    }

    fn signature(pc: u64) -> u16 {
        // Fold the PC down to the SHCT index width.
        let x = pc ^ (pc >> 14) ^ (pc >> 28);
        (x as usize % Self::SHCT_ENTRIES) as u16
    }

    /// The SHCT counter for a PC (test hook).
    #[must_use]
    pub fn counter_for(&self, pc: u64) -> u8 {
        self.shct[Self::signature(pc) as usize]
    }
}

impl ReplacementPolicy for ShipLite {
    fn on_access(&mut self, set: usize, way: usize) {
        self.on_access_ctx(set, way, &ReplCtx::default());
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.on_fill_ctx(set, way, &ReplCtx::default());
    }

    fn on_access_ctx(&mut self, set: usize, way: usize, _ctx: &ReplCtx) {
        let i = set * self.ways + way;
        self.rrpv[i] = 0;
        if !self.reused[i] {
            self.reused[i] = true;
            let s = self.sig[i] as usize;
            self.shct[s] = (self.shct[s] + 1).min(Self::SHCT_MAX);
        }
    }

    fn on_fill_ctx(&mut self, set: usize, way: usize, ctx: &ReplCtx) {
        let i = set * self.ways + way;
        // The previous occupant leaves now: an unreused line trains its
        // signature toward "dead".
        if !self.reused[i] && self.rrpv[i] != Self::MAX {
            let s = self.sig[i] as usize;
            self.shct[s] = self.shct[s].saturating_sub(1);
        }
        let sig = Self::signature(ctx.pc);
        self.sig[i] = sig;
        self.reused[i] = false;
        self.rrpv[i] = if self.shct[sig as usize] == 0 {
            Self::MAX
        } else {
            Self::MAX - 1
        };
    }

    fn victim(&mut self, set: usize, ways: usize) -> usize {
        rrip_victim(&mut self.rrpv, set * self.ways, ways, Self::MAX)
    }

    fn name(&self) -> &'static str {
        "ship"
    }
}

/// Pseudo-random replacement (xorshift; deterministic).
#[derive(Debug)]
pub struct RandomRepl {
    state: u64,
}

impl RandomRepl {
    /// Creates the policy with a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }
}

impl ReplacementPolicy for RandomRepl {
    fn on_access(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize, ways: usize) -> usize {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state % ways as u64) as usize
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Lru::new(2, 4);
        for w in 0..4 {
            p.on_fill(1, w);
        }
        p.on_access(1, 0); // way 1 now the oldest
        assert_eq!(p.victim(1, 4), 1);
        p.on_access(1, 1);
        assert_eq!(p.victim(1, 4), 2);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut p = Lru::new(2, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_fill(1, 1);
        p.on_fill(1, 0);
        assert_eq!(p.victim(0, 2), 0);
        assert_eq!(p.victim(1, 2), 1);
    }

    #[test]
    fn srrip_prefers_distant_lines() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_access(0, 2); // rrpv 0
        let v = p.victim(0, 4);
        assert_ne!(v, 2, "freshly reused line evicted");
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = RandomRepl::new(9);
        let mut b = RandomRepl::new(9);
        for _ in 0..100 {
            let (x, y) = (a.victim(0, 8), b.victim(0, 8));
            assert_eq!(x, y);
            assert!(x < 8);
        }
    }

    #[test]
    fn drrip_leader_misses_move_psel() {
        let mut p = Drrip::new(64, 4);
        assert_eq!(p.psel, 0);
        // Misses in an SRRIP-leader set charge SRRIP (psel rises: BRRIP
        // preferred by followers).
        for _ in 0..10 {
            p.on_fill(0, 0);
        }
        assert!(p.psel > 0);
        assert!(!p.prefers_srrip());
        // Heavier miss pressure in the BRRIP leader flips the selector.
        for _ in 0..30 {
            p.on_fill(1, 0);
        }
        assert!(p.psel < 0);
        assert!(p.prefers_srrip());
    }

    #[test]
    fn drrip_psel_saturates() {
        let mut p = Drrip::new(64, 4);
        for _ in 0..2000 {
            p.on_fill(0, 0);
        }
        assert_eq!(p.psel, Drrip::PSEL_BOUND);
        for _ in 0..5000 {
            p.on_fill(1, 0);
        }
        assert_eq!(p.psel, -Drrip::PSEL_BOUND);
    }

    #[test]
    fn drrip_brrip_mostly_inserts_distant() {
        let mut p = Drrip::new(64, 4);
        // Force followers to BRRIP.
        for _ in 0..600 {
            p.on_fill(0, 0);
        }
        // Insert into a follower set many times; most must land at MAX.
        let mut distant = 0;
        for i in 0..64 {
            p.on_fill(5, i % 4);
            if p.rrpv[5 * 4 + i % 4] == Drrip::MAX {
                distant += 1;
            }
        }
        assert!(
            distant > 48,
            "BRRIP must mostly insert at distant RRPV: {distant}"
        );
    }

    #[test]
    fn drrip_follower_tracks_psel_sign() {
        let mut p = Drrip::new(64, 4);
        for _ in 0..100 {
            p.on_fill(1, 0); // BRRIP leader misses → SRRIP wins
        }
        assert!(p.use_srrip(7), "follower must use SRRIP when psel < 0");
        for _ in 0..300 {
            p.on_fill(0, 0); // SRRIP leader misses → BRRIP wins
        }
        assert!(!p.use_srrip(7));
    }

    #[test]
    fn drrip_tiny_cache_has_both_leaders() {
        let p = Drrip::new(8, 2);
        assert_eq!(p.leader(0), Some(true));
        assert_eq!(p.leader(1), Some(false));
        assert_eq!(p.leader(2), None);
    }

    #[test]
    fn ship_dead_signature_inserts_distant() {
        let mut p = ShipLite::new(4, 2);
        let dead_pc = 0xdead_0000;
        let ctx = |pc: u64| ReplCtx { line: 0, pc };
        // Fill and overwrite without reuse until the signature trains dead.
        for _ in 0..4 {
            p.on_fill_ctx(0, 0, &ctx(dead_pc));
        }
        assert_eq!(p.counter_for(dead_pc), 0);
        p.on_fill_ctx(0, 1, &ctx(dead_pc));
        assert_eq!(
            p.rrpv[1],
            ShipLite::MAX,
            "dead signature must insert at MAX"
        );
    }

    #[test]
    fn ship_reuse_trains_signature_live() {
        let mut p = ShipLite::new(4, 2);
        let pc = 0x400;
        let ctx = ReplCtx { line: 0, pc };
        p.on_fill_ctx(0, 0, &ctx);
        let before = p.counter_for(pc);
        p.on_access_ctx(0, 0, &ctx);
        assert_eq!(p.counter_for(pc), before + 1);
        // Repeated accesses to the same fill train only once.
        p.on_access_ctx(0, 0, &ctx);
        assert_eq!(p.counter_for(pc), before + 1);
    }

    #[test]
    fn ship_live_signature_inserts_near() {
        let mut p = ShipLite::new(4, 2);
        let pc = 0x800;
        let ctx = ReplCtx { line: 0, pc };
        // Train the signature live.
        for w in [0usize, 1] {
            p.on_fill_ctx(1, w, &ctx);
            p.on_access_ctx(1, w, &ctx);
        }
        p.on_fill_ctx(1, 0, &ctx);
        assert_eq!(p.rrpv[2], ShipLite::MAX - 1);
    }

    #[test]
    fn repl_kind_builds_every_policy_with_unique_names() {
        let mut names = std::collections::HashSet::new();
        for k in ReplKind::ALL {
            let p = k.build(16, 4);
            assert_eq!(p.name(), k.name());
            assert!(names.insert(k.name()));
        }
        assert_eq!(ReplKind::default(), ReplKind::Lru);
    }

    #[test]
    fn every_policy_returns_valid_victims() {
        for k in ReplKind::ALL {
            let mut p = k.build(8, 4);
            for set in 0..8 {
                for way in 0..4 {
                    p.on_fill(set, way);
                }
            }
            for set in 0..8 {
                for _ in 0..20 {
                    let v = p.victim(set, 4);
                    assert!(v < 4, "{}: victim out of range", k.name());
                }
            }
        }
    }
}
