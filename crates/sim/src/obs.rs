//! Feature-gated engine instrumentation.
//!
//! Built with `--features obs`, [`EngineObs`] records per-component tick
//! counters, the event-queue depth, cycles advanced vs ticks executed,
//! and wall-clock span timings for the scheduler's ROB walk and each
//! tick's cache/core sections — all into the process-global
//! [`tlp_obs`] registry (`sim_*` metric names), which `tlp_repro
//! --profile` snapshots after a run.
//!
//! Without the feature, [`EngineObs`] is a zero-sized type whose methods
//! are empty `#[inline]` bodies: the default build's hot loop is exactly
//! the uninstrumented code, which is what keeps the observation-only
//! guarantee compile-time-cheap.
//!
//! Either way the instrumentation is write-only: the engine never reads
//! a metric back, so enabling `obs` cannot change simulated state (the
//! determinism suite runs under the feature in CI to pin this).

#[cfg(feature = "obs")]
mod imp {
    use tlp_obs::{Counter, Gauge, Histogram};

    /// Live handles into the process-global registry, hoisted once per
    /// [`System`](crate::System).
    #[derive(Debug, Clone)]
    pub struct EngineObs {
        ticks: Counter,
        dram_ticks: Counter,
        llc_ticks: Counter,
        l2_ticks: Counter,
        l1d_ticks: Counter,
        core_ticks: Counter,
        cycles_advanced: Counter,
        cycles_skipped: Counter,
        queue_depth: Gauge,
        rob_walk_ns: Histogram,
        cache_tick_ns: Histogram,
        core_tick_ns: Histogram,
    }

    impl Default for EngineObs {
        fn default() -> Self {
            Self::new()
        }
    }

    impl EngineObs {
        /// Hoists handles for every `sim_*` metric out of the global
        /// registry (one map lookup each, here, instead of per tick).
        #[must_use]
        pub fn new() -> Self {
            let reg = tlp_obs::global();
            Self {
                ticks: reg.counter("sim_ticks_executed_total"),
                dram_ticks: reg.counter("sim_dram_ticks_total"),
                llc_ticks: reg.counter("sim_llc_ticks_total"),
                l2_ticks: reg.counter("sim_l2_ticks_total"),
                l1d_ticks: reg.counter("sim_l1d_ticks_total"),
                core_ticks: reg.counter("sim_core_ticks_total"),
                cycles_advanced: reg.counter("sim_cycles_advanced_total"),
                cycles_skipped: reg.counter("sim_cycles_skipped_total"),
                queue_depth: reg.gauge("sim_event_queue_depth"),
                rob_walk_ns: reg.histogram("sim_rob_walk_ns"),
                cache_tick_ns: reg.histogram("sim_cache_tick_ns"),
                core_tick_ns: reg.histogram("sim_core_tick_ns"),
            }
        }

        /// Counts one executed tick across every component type.
        pub fn on_tick(&self, cores: u64) {
            self.ticks.inc();
            self.dram_ticks.inc();
            self.llc_ticks.inc();
            self.l2_ticks.add(cores);
            self.l1d_ticks.add(cores);
            self.core_ticks.add(cores);
        }

        /// Records a finished run: total cycles advanced and the idle
        /// cycles the event engine skipped (0 in cycle mode).
        pub fn on_run_complete(&self, cycles: u64, ticks: u64) {
            self.cycles_advanced.add(cycles);
            self.cycles_skipped.add(cycles.saturating_sub(ticks));
        }

        /// Publishes the event queue's depth after a scheduling pass.
        pub fn event_queue_depth(&self, depth: usize) {
            self.queue_depth
                .set(i64::try_from(depth).unwrap_or(i64::MAX));
        }

        /// Times the scheduler's per-core ROB walk.
        pub fn rob_walk_span(&self) -> tlp_obs::Span {
            self.rob_walk_ns.span()
        }

        /// Times the cache section (LLC, L2s, L1Ds) of one tick.
        pub fn cache_tick_span(&self) -> tlp_obs::Span {
            self.cache_tick_ns.span()
        }

        /// Times the core section of one tick.
        pub fn core_tick_span(&self) -> tlp_obs::Span {
            self.core_tick_ns.span()
        }

        /// The global registry rendered as Prometheus-style text — the
        /// watchdog appends this to its panic diagnosis.
        pub fn render_snapshot() -> String {
            tlp_obs::global().snapshot().render_prometheus()
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    /// The disabled facade: a zero-sized type whose methods compile to
    /// nothing.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct EngineObs;

    /// The disabled span: dropping it does nothing.
    pub struct NoopSpan;

    impl EngineObs {
        /// No-op constructor (build with `--features obs` to record).
        #[inline(always)]
        #[must_use]
        pub fn new() -> Self {
            Self
        }

        /// No-op (build with `--features obs` to record).
        #[inline(always)]
        pub fn on_tick(&self, _cores: u64) {}

        /// No-op (build with `--features obs` to record).
        #[inline(always)]
        pub fn on_run_complete(&self, _cycles: u64, _ticks: u64) {}

        /// No-op (build with `--features obs` to record).
        #[inline(always)]
        pub fn event_queue_depth(&self, _depth: usize) {}

        /// No-op (build with `--features obs` to record).
        #[inline(always)]
        pub fn rob_walk_span(&self) -> NoopSpan {
            NoopSpan
        }

        /// No-op (build with `--features obs` to record).
        #[inline(always)]
        pub fn cache_tick_span(&self) -> NoopSpan {
            NoopSpan
        }

        /// No-op (build with `--features obs` to record).
        #[inline(always)]
        pub fn core_tick_span(&self) -> NoopSpan {
            NoopSpan
        }

        /// Empty without the `obs` feature.
        #[inline(always)]
        pub fn render_snapshot() -> String {
            String::new()
        }
    }
}

pub use imp::EngineObs;
