//! Shared scalar types and address arithmetic.

/// A simulation cycle count.
pub type Cycle = u64;

/// Core index within a [`crate::engine::System`].
pub type CoreId = usize;

/// Cache line size in bytes (64 B, as in all ChampSim configurations).
pub const LINE_SIZE: u64 = 64;

/// Page size in bytes (4 KB).
pub const PAGE_SIZE: u64 = 4096;

/// Cache lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / LINE_SIZE;

/// Where in the hierarchy a request was ultimately served from.
///
/// This is the label the paper's Figure 4 (off-chip prediction outcomes)
/// and Figures 5/6 (prefetch serving level) break down over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// First-level data cache.
    L1d,
    /// Unified second-level cache.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

impl Level {
    /// All levels, nearest first.
    pub const ALL: [Level; 4] = [Level::L1d, Level::L2, Level::Llc, Level::Dram];

    /// Dense index (0..4) for stats arrays.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Level::L1d => 0,
            Level::L2 => 1,
            Level::Llc => 2,
            Level::Dram => 3,
        }
    }

    /// True when the level is off-chip (the positive class for every
    /// off-chip predictor).
    #[inline]
    #[must_use]
    pub fn is_off_chip(self) -> bool {
        matches!(self, Level::Dram)
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::L1d => write!(f, "L1D"),
            Level::L2 => write!(f, "L2C"),
            Level::Llc => write!(f, "LLC"),
            Level::Dram => write!(f, "DRAM"),
        }
    }
}

/// Cache-line address (byte address divided by the line size).
#[inline]
#[must_use]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_SIZE
}

/// Page number of a byte address.
#[inline]
#[must_use]
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_SIZE
}

/// Offset of the cache line within its page (0..64), the paper's
/// "cacheline offset" feature component.
#[inline]
#[must_use]
pub fn line_offset_in_page(addr: u64) -> u64 {
    (addr % PAGE_SIZE) / LINE_SIZE
}

/// Byte offset within the cache line (0..64), the paper's "byte offset"
/// feature component.
#[inline]
#[must_use]
pub fn byte_offset_in_line(addr: u64) -> u64 {
    addr % LINE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_arithmetic() {
        let addr = 3 * PAGE_SIZE + 5 * LINE_SIZE + 7;
        assert_eq!(page_of(addr), 3);
        assert_eq!(line_offset_in_page(addr), 5);
        assert_eq!(byte_offset_in_line(addr), 7);
        assert_eq!(line_of(addr), 3 * LINES_PER_PAGE + 5);
    }

    #[test]
    fn level_indices_are_dense() {
        let mut seen = [false; 4];
        for l in Level::ALL {
            seen[l.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(Level::Dram.is_off_chip());
        assert!(!Level::Llc.is_off_chip());
    }
}
