//! `tlp-sim`: a cycle-level CPU + memory-hierarchy simulator in the spirit
//! of ChampSim, built as the substrate for reproducing the TLP paper
//! (HPCA 2024).
//!
//! The simulated system follows the paper's Table III: a 4-wide
//! out-of-order core with a 224-entry ROB and a hashed-perceptron branch
//! predictor, a three-level non-inclusive cache hierarchy with MSHRs,
//! two-level TLBs, and a banked DDR4-style DRAM with a bandwidth-limited
//! data bus. Prefetchers, off-chip predictors and prefetch filters are
//! plugins (see [`hooks`]) so that the baseline, Hermes, PPF and TLP can be
//! compared on identical hardware.
//!
//! # Example
//!
//! ```
//! use tlp_sim::config::SystemConfig;
//! use tlp_sim::engine::{CoreSetup, System};
//! use tlp_trace::catalog::{self, Scale};
//! use tlp_trace::VecTrace;
//!
//! let w = catalog::workload("spec.mcf_06", Scale::Tiny).expect("known workload");
//! let trace = VecTrace::from_workload(w.as_ref(), 20_000);
//! let mut sys = System::new(
//!     SystemConfig::cascade_lake(1),
//!     vec![CoreSetup::new(Box::new(trace))],
//! );
//! let report = sys.run(5_000, 10_000);
//! assert!(report.ipc() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod engine;
pub mod hooks;
pub mod obs;
pub mod replacement;
pub mod request;
pub mod serial;
pub mod stats;
pub mod types;
pub mod victim;
pub mod vm;

pub use config::SystemConfig;
pub use engine::{CoreSetup, EngineMode, System};
pub use stats::SimReport;
pub use tlp_timeline::{Timeline, TimelineConfig};
pub use types::{CoreId, Cycle, Level};
