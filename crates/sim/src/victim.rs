//! An optional victim cache on the LLC refill path (Jouppi, ISCA 1990).
//!
//! The paper's related work (§VII) contrasts TLP with the Victim Cache: a
//! small fully-associative buffer holding recent LLC evictions, probed on
//! LLC misses. A hit swaps the line back into the LLC, converting a
//! would-be DRAM access into an on-chip one. The paper argues this helps
//! conflict-heavy SPEC-style workloads but relies on locality assumptions
//! that irregular workloads break — the victim-cache extension experiment
//! tests exactly that claim against TLP.
//!
//! Model notes: dirty victims are written back to DRAM at eviction time
//! (as without a victim cache) and enter the buffer clean, so DRAM write
//! traffic is identical with and without the buffer; only read traffic
//! changes.

use serde::{Deserialize, Serialize};

/// Victim-cache counters.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimStats {
    /// LLC misses that hit in the victim cache (DRAM reads avoided).
    pub hits: u64,
    /// LLC misses that also missed in the victim cache.
    pub misses: u64,
    /// Evicted LLC lines inserted.
    pub insertions: u64,
}

impl VictimStats {
    /// Hit rate over all probes.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A fully-associative, LRU victim buffer of line addresses.
#[derive(Debug)]
pub struct VictimCache {
    lines: Vec<u64>,
    stamps: Vec<u64>,
    capacity: usize,
    clock: u64,
    /// Counters.
    pub stats: VictimStats,
}

impl VictimCache {
    /// Creates a victim cache holding `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use `Option<VictimCache>` to disable).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "victim cache capacity must be nonzero");
        Self {
            lines: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            stats: VictimStats::default(),
        }
    }

    /// Number of lines currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no lines are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Probes for `line` on an LLC miss. A hit removes the entry (the line
    /// swaps back into the LLC) and returns true.
    pub fn probe_remove(&mut self, line: u64) -> bool {
        if let Some(i) = self.lines.iter().position(|&l| l == line) {
            self.lines.swap_remove(i);
            self.stamps.swap_remove(i);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        false
    }

    /// Inserts an evicted LLC line, displacing the LRU entry when full.
    /// Re-inserting a present line refreshes its age.
    pub fn insert(&mut self, line: u64) {
        self.clock += 1;
        self.stats.insertions += 1;
        if let Some(i) = self.lines.iter().position(|&l| l == line) {
            self.stamps[i] = self.clock;
            return;
        }
        if self.lines.len() < self.capacity {
            self.lines.push(line);
            self.stamps.push(self.clock);
            return;
        }
        let lru = self
            .stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .expect("nonzero capacity");
        self.lines[lru] = line;
        self.stamps[lru] = self.clock;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_removes_entry() {
        let mut vc = VictimCache::new(4);
        vc.insert(10);
        assert!(vc.probe_remove(10));
        assert!(!vc.probe_remove(10), "entry consumed by the hit");
        assert_eq!(vc.stats.hits, 1);
        assert_eq!(vc.stats.misses, 1);
        assert!(vc.is_empty());
    }

    #[test]
    fn lru_displacement() {
        let mut vc = VictimCache::new(2);
        vc.insert(1);
        vc.insert(2);
        vc.insert(3); // displaces 1
        assert!(!vc.probe_remove(1));
        assert!(vc.probe_remove(2));
        assert!(vc.probe_remove(3));
        assert_eq!(vc.len(), 0);
    }

    #[test]
    fn reinsert_refreshes_age() {
        let mut vc = VictimCache::new(2);
        vc.insert(1);
        vc.insert(2);
        vc.insert(1); // refresh: 2 is now LRU
        vc.insert(3); // displaces 2
        assert!(vc.probe_remove(1));
        assert!(!vc.probe_remove(2));
        assert!(vc.probe_remove(3));
    }

    #[test]
    fn hit_rate_counts() {
        let mut vc = VictimCache::new(2);
        vc.insert(5);
        vc.probe_remove(5);
        vc.probe_remove(6);
        vc.probe_remove(7);
        assert!((vc.stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(VictimStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = VictimCache::new(0);
    }
}
