//! Simulation statistics: the counters every figure of the paper is
//! computed from.

use serde::{Deserialize, Serialize};

use crate::types::Level;

/// Per-cache counters.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand (load/RFO) accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Prefetch requests that hit (dropped silently).
    pub prefetch_hits: u64,
    /// Prefetch requests that missed and went downstream.
    pub prefetch_misses: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// Prefetched lines referenced by a demand before eviction.
    pub prefetch_useful: u64,
    /// Prefetched lines evicted (or left at end of simulation) unused.
    pub prefetch_useless: u64,
    /// Writebacks issued downstream.
    pub writebacks: u64,
    /// Requests stalled for a cycle because MSHRs were exhausted.
    pub mshr_stalls: u64,
}

impl CacheStats {
    /// Total demand accesses.
    #[must_use]
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Misses per kilo-instruction given an instruction count.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.demand_misses as f64 * 1000.0 / instructions as f64
    }
}

/// DRAM controller counters.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Demand/prefetch read transactions scheduled.
    pub reads: u64,
    /// Speculative (off-chip-predictor) read transactions scheduled.
    pub spec_reads: u64,
    /// Write (writeback) transactions scheduled.
    pub writes: u64,
    /// Row-buffer hits among scheduled transactions.
    pub row_hits: u64,
    /// Row conflicts (precharge required).
    pub row_conflicts: u64,
    /// Requests rejected because the read queue was full (retried).
    pub read_queue_full: u64,
    /// Speculative requests dropped because the queue was full.
    pub spec_dropped: u64,
    /// Speculative fills consumed by a matching demand.
    pub spec_consumed: u64,
    /// Speculative fills that expired unused (wasted bandwidth).
    pub spec_wasted: u64,
}

impl DramStats {
    /// Total DRAM transactions — the paper's headline DRAM-traffic metric
    /// (demand + prefetch + speculative reads, plus writebacks).
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.reads + self.spec_reads + self.writes
    }
}

/// Off-chip-prediction counters (Figures 2–4).
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffChipStats {
    /// Loads predicted off-chip with high confidence (spec issued at core).
    pub issued_now: u64,
    /// Loads tagged for selective delay (spec issued on L1D miss).
    pub tagged_delayed: u64,
    /// Delayed tags that actually missed in L1D and issued a spec request.
    pub delayed_issued: u64,
    /// Loads predicted on-chip.
    pub predicted_onchip: u64,
    /// For every *issued* speculative request: where the demand was
    /// actually served (Figure 4's outcome breakdown). Indexed by
    /// [`Level::index`].
    pub issued_outcome: [u64; 4],
    /// Off-chip loads (served from DRAM) that the predictor missed
    /// (predicted on-chip).
    pub missed_offchip: u64,
    /// On-chip loads correctly predicted on-chip.
    pub correct_onchip: u64,
}

impl OffChipStats {
    /// Records the outcome of an issued speculative request.
    pub fn record_outcome(&mut self, served: Level) {
        self.issued_outcome[served.index()] += 1;
    }

    /// Fraction of issued speculative requests whose load was truly served
    /// by DRAM (Figure 4's "accurate" slice).
    #[must_use]
    pub fn issue_accuracy(&self) -> f64 {
        let total: u64 = self.issued_outcome.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.issued_outcome[Level::Dram.index()] as f64 / total as f64
    }
}

/// Prefetch-pipeline counters for one prefetcher (Figures 5, 6, 12).
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Candidates produced by the prefetcher.
    pub candidates: u64,
    /// Candidates discarded by the filter (SLP/PPF).
    pub filtered: u64,
    /// Candidates dropped for structural reasons (duplicate in cache/MSHR,
    /// queue full).
    pub dropped: u64,
    /// Prefetch requests issued into the hierarchy.
    pub issued: u64,
    /// Issued prefetches that completed (filled a line), by serving level.
    pub filled_by_level: [u64; 4],
    /// Prefetched lines that were later useful, by level that served the
    /// prefetch.
    pub useful_by_level: [u64; 4],
    /// Prefetched lines evicted/expired unused, by serving level.
    pub useless_by_level: [u64; 4],
}

impl PrefetchStats {
    /// Total filled prefetches.
    #[must_use]
    pub fn filled(&self) -> u64 {
        self.filled_by_level.iter().sum()
    }

    /// Total useful prefetches.
    #[must_use]
    pub fn useful(&self) -> u64 {
        self.useful_by_level.iter().sum()
    }

    /// Total useless prefetches.
    #[must_use]
    pub fn useless(&self) -> u64 {
        self.useless_by_level.iter().sum()
    }

    /// Prefetch accuracy = useful / (useful + useless), the Figure 12 metric.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let denom = self.useful() + self.useless();
        if denom == 0 {
            return 0.0;
        }
        self.useful() as f64 / denom as f64
    }

    /// Prefetches per kilo-instruction served from `level` that turned out
    /// useless (Figure 5) or useful (Figure 6).
    #[must_use]
    pub fn ppki(&self, level: Level, useful: bool, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        let n = if useful {
            self.useful_by_level[level.index()]
        } else {
            self.useless_by_level[level.index()]
        };
        n as f64 * 1000.0 / instructions as f64
    }
}

/// Per-core counters.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired (within the measured window).
    pub instructions: u64,
    /// Cycles elapsed until this core finished its measured window.
    pub cycles: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// STLB misses (page walks).
    pub stlb_misses: u64,
    /// Store-to-load forwards.
    pub store_forwards: u64,
}

impl CoreStats {
    /// Instructions per cycle over the measured window.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }
}

/// Everything measured for one core over the simulation window.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Workload name driving this core.
    pub workload: String,
    /// Core counters.
    pub core: CoreStats,
    /// L1D counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Off-chip prediction counters.
    pub offchip: OffChipStats,
    /// L1D prefetcher counters.
    pub l1_prefetch: PrefetchStats,
    /// L2 prefetcher counters.
    pub l2_prefetch: PrefetchStats,
}

/// The full result of one simulation run.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-core results.
    pub cores: Vec<CoreReport>,
    /// Shared LLC counters.
    pub llc: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// LLC victim-cache counters (all zero when disabled).
    #[serde(default)]
    pub victim: crate::victim::VictimStats,
    /// Total cycles simulated in the measured window.
    pub total_cycles: u64,
}

impl SimReport {
    /// Single-core IPC (panics if not a 1-core run).
    ///
    /// # Panics
    ///
    /// Panics when the report has no cores.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.cores[0].core.ipc()
    }

    /// Total instructions across cores.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.core.instructions).sum()
    }

    /// Total DRAM transactions.
    #[must_use]
    pub fn dram_transactions(&self) -> u64 {
        self.dram.transactions()
    }

    /// LLC MPKI over all cores' instructions.
    #[must_use]
    pub fn llc_mpki(&self) -> f64 {
        self.llc.mpki(self.instructions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_and_ipc() {
        let c = CacheStats {
            demand_misses: 50,
            demand_hits: 100,
            ..CacheStats::default()
        };
        assert!((c.mpki(10_000) - 5.0).abs() < 1e-12);
        assert_eq!(c.demand_accesses(), 150);
        let cs = CoreStats {
            instructions: 1000,
            cycles: 500,
            ..CoreStats::default()
        };
        assert!((cs.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        assert_eq!(CacheStats::default().mpki(0), 0.0);
        assert_eq!(CoreStats::default().ipc(), 0.0);
        assert_eq!(PrefetchStats::default().accuracy(), 0.0);
        assert_eq!(OffChipStats::default().issue_accuracy(), 0.0);
    }

    #[test]
    fn prefetch_accuracy() {
        let mut p = PrefetchStats::default();
        p.useful_by_level[Level::Dram.index()] = 3;
        p.useless_by_level[Level::Dram.index()] = 9;
        assert!((p.accuracy() - 0.25).abs() < 1e-12);
        assert!((p.ppki(Level::Dram, false, 1000) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn dram_transactions_sum_all_kinds() {
        let d = DramStats {
            reads: 10,
            spec_reads: 5,
            writes: 3,
            ..DramStats::default()
        };
        assert_eq!(d.transactions(), 18);
    }

    #[test]
    fn offchip_outcome_accuracy() {
        let mut o = OffChipStats::default();
        o.record_outcome(Level::Dram);
        o.record_outcome(Level::Dram);
        o.record_outcome(Level::L1d);
        o.record_outcome(Level::Llc);
        assert!((o.issue_accuracy() - 0.5).abs() < 1e-12);
    }
}
