//! Banked DRAM controller with FR-FCFS scheduling, an explicitly-occupied
//! data bus (the bandwidth knob of Figure 16), and the DDRP buffer that
//! holds completed speculative fills for Hermes-style predictors.

use std::collections::VecDeque;

use crate::config::DramConfig;
use crate::request::{ReqKind, Request, NO_JOURNEY};
use crate::stats::DramStats;
use crate::types::{CoreId, Cycle, LINE_SIZE};

/// One in-flight or queued DRAM transaction.
#[derive(Debug)]
struct Txn {
    line: u64,
    core: CoreId,
    is_write: bool,
    is_spec: bool,
    /// Bank index, fixed by the line address. Computed once at enqueue:
    /// the FR-FCFS scan revisits every queued transaction every cycle,
    /// and `line % banks` / row division there would put two integer
    /// divisions per entry in the per-tick path.
    bank: usize,
    /// Row index, fixed by the line address (see `bank`).
    row: u64,
    /// Demand/prefetch requests waiting on this transaction.
    waiters: Vec<Request>,
    /// Completion cycle once scheduled.
    done_at: Option<Cycle>,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// A completed speculative fill waiting to be claimed by its demand.
#[derive(Debug, Clone, Copy)]
struct DdrpEntry {
    line: u64,
    core: CoreId,
}

/// The DRAM controller.
pub struct Dram {
    cfg: DramConfig,
    burst: Cycle,
    read_q: VecDeque<Txn>,
    write_q: VecDeque<Txn>,
    in_flight: Vec<Txn>,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    /// Earliest `done_at` across `in_flight` (`Cycle::MAX` when empty):
    /// lets the completion scan be skipped on the many cycles where
    /// nothing can finish. Exact, not conservative — pushed down on
    /// issue, recomputed after completions are harvested.
    earliest_done: Cycle,
    ddrp: VecDeque<DdrpEntry>,
    draining_writes: bool,
    /// Recycled waiter buffers: completed transactions return their
    /// (cleared) `Vec<Request>` here and new read transactions reuse
    /// them, so a warmed-up controller allocates nothing per tick.
    free_waiters: Vec<Vec<Request>>,
    /// Bank-service timestamps for timeline-sampled waiters, drained by
    /// the engine each tick. Preallocated; overflow marks are dropped
    /// (journeys then simply miss their bank stamp).
    journey_marks: Vec<(u32, Cycle)>,
    /// Counters.
    pub stats: DramStats,
}

/// Bound on undrained journey marks. The engine drains every tick, so in
/// practice this holds one tick's worth of newly scheduled sampled reads.
const JOURNEY_MARKS_CAP: usize = 128;

/// Freelist bound: enough for every read-queue slot plus in-flight
/// transactions at realistic configs; beyond it buffers are dropped.
const FREE_WAITERS_CAP: usize = 128;

impl std::fmt::Debug for Dram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dram")
            .field("read_q", &self.read_q.len())
            .field("write_q", &self.write_q.len())
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

impl Dram {
    /// Creates a controller from its configuration.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            burst: cfg.burst_cycles(),
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            in_flight: Vec::new(),
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0,
                };
                cfg.banks
            ],
            bus_free_at: 0,
            earliest_done: Cycle::MAX,
            ddrp: VecDeque::new(),
            draining_writes: false,
            free_waiters: Vec::new(),
            journey_marks: Vec::with_capacity(JOURNEY_MARKS_CAP),
            cfg,
            stats: DramStats::default(),
        }
    }

    /// Bus occupancy per transaction in cycles.
    #[must_use]
    pub fn burst_cycles(&self) -> Cycle {
        self.burst
    }

    fn bank_of(&self, line: u64) -> usize {
        (line % self.cfg.banks as u64) as usize
    }

    fn row_of(&self, line: u64) -> u64 {
        line * LINE_SIZE / self.cfg.row_bytes
    }

    /// Enqueues a demand/prefetch read. If a transaction (including a
    /// speculative one) for the same line is already queued or in flight,
    /// the request merges into it — this is how a demand "catches up with"
    /// its Hermes speculative request. When the read queue is full the
    /// request is handed back unchanged (`Err`), so the caller retries
    /// next cycle by moving the same value — no clone on the retry path.
    // The large Err is the point: the rejected request moves back to the
    // caller's retry queue by value. Boxing would put the retry storm on
    // the allocator, which tests/zero_alloc.rs forbids.
    #[allow(clippy::result_large_err)]
    pub fn push_read(&mut self, req: Request) -> Result<(), Request> {
        let line = req.line();
        let core = req.core;
        for t in self.in_flight.iter_mut().chain(self.read_q.iter_mut()) {
            if !t.is_write && t.line == line && t.core == core {
                if t.is_spec {
                    self.stats.spec_consumed += 1;
                    t.is_spec = false; // now carries a real demand
                }
                t.waiters.push(req);
                return Ok(());
            }
        }
        if self.read_q.len() >= self.cfg.read_queue {
            self.stats.read_queue_full += 1;
            return Err(req);
        }
        self.stats.reads += 1;
        let mut waiters = self.free_waiters.pop().unwrap_or_default();
        waiters.push(req);
        self.read_q.push_back(Txn {
            line,
            core,
            is_write: false,
            is_spec: false,
            bank: self.bank_of(line),
            row: self.row_of(line),
            waiters,
            done_at: None,
        });
        Ok(())
    }

    /// Enqueues a speculative (off-chip predictor) read. Handed back
    /// (`Err`) when the read queue is full or a transaction for the line
    /// already exists (the spec request would be redundant) — callers
    /// that don't retry simply drop the returned request.
    #[allow(clippy::result_large_err)] // by-value handback, see push_read
    pub fn push_speculative(&mut self, req: Request) -> Result<(), Request> {
        debug_assert_eq!(req.kind, ReqKind::Speculative);
        let line = req.line();
        let exists = self
            .in_flight
            .iter()
            .chain(self.read_q.iter())
            .any(|t| !t.is_write && t.line == line && t.core == req.core)
            || self
                .ddrp
                .iter()
                .any(|e| e.line == line && e.core == req.core);
        if exists {
            return Err(req);
        }
        if self.read_q.len() >= self.cfg.read_queue {
            self.stats.spec_dropped += 1;
            return Err(req);
        }
        self.stats.spec_reads += 1;
        self.read_q.push_back(Txn {
            line,
            core: req.core,
            is_write: false,
            is_spec: true,
            bank: self.bank_of(line),
            row: self.row_of(line),
            waiters: Vec::new(),
            done_at: None,
        });
        Ok(())
    }

    /// Enqueues a writeback. Returns false when the write queue is full.
    pub fn push_write(&mut self, paddr: u64, core: CoreId) -> bool {
        if self.write_q.len() >= self.cfg.write_queue {
            return false;
        }
        self.stats.writes += 1;
        let line = paddr / LINE_SIZE;
        self.write_q.push_back(Txn {
            line,
            core,
            is_write: true,
            is_spec: false,
            bank: self.bank_of(line),
            row: self.row_of(line),
            waiters: Vec::new(),
            done_at: None,
        });
        true
    }

    /// Claims a completed speculative fill for (`core`, line of `paddr`).
    /// Returns true when the DDRP buffer had the line — the caller treats
    /// the demand as served by DRAM with zero additional latency and no new
    /// transaction.
    pub fn take_ddrp(&mut self, core: CoreId, paddr: u64) -> bool {
        let line = paddr / LINE_SIZE;
        if let Some(pos) = self
            .ddrp
            .iter()
            .position(|e| e.line == line && e.core == core)
        {
            self.ddrp.remove(pos);
            self.stats.spec_consumed += 1;
            return true;
        }
        false
    }

    /// Advances the controller one cycle; returns requests whose data is
    /// now available. Allocating convenience wrapper around
    /// [`Dram::tick_into`] for tests and simple callers.
    pub fn tick(&mut self, now: Cycle) -> Vec<Request> {
        let mut done = Vec::new();
        self.tick_into(now, &mut done);
        done
    }

    /// Advances the controller one cycle, appending requests whose data
    /// is now available to `done` (in-flight spec fills park in the DDRP
    /// buffer instead). Completed transactions return their waiter
    /// buffers to the freelist, so the warmed-up hot loop is
    /// allocation-free.
    pub fn tick_into(&mut self, now: Cycle, done: &mut Vec<Request>) {
        self.schedule(now);
        // Nothing in flight can have finished yet: skip the scan.
        if self.earliest_done > now {
            return;
        }
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].done_at.is_some_and(|d| d <= now) {
                let mut t = self.in_flight.swap_remove(i);
                if t.is_spec {
                    if self.ddrp.len() >= self.cfg.ddrp_buffer {
                        self.ddrp.pop_front();
                        self.stats.spec_wasted += 1;
                    }
                    self.ddrp.push_back(DdrpEntry {
                        line: t.line,
                        core: t.core,
                    });
                } else {
                    done.append(&mut t.waiters);
                }
                self.recycle_waiters(t.waiters);
            } else {
                i += 1;
            }
        }
        self.earliest_done = self
            .in_flight
            .iter()
            .filter_map(|t| t.done_at)
            .min()
            .unwrap_or(Cycle::MAX);
    }

    /// Returns a consumed waiter buffer to the freelist. Zero-capacity
    /// buffers (spec/write transactions never gained a waiter) carry
    /// nothing worth keeping and are dropped.
    fn recycle_waiters(&mut self, mut v: Vec<Request>) {
        if v.capacity() > 0 && self.free_waiters.len() < FREE_WAITERS_CAP {
            v.clear();
            self.free_waiters.push(v);
        }
    }

    /// FR-FCFS with write draining: writes are serviced in bursts when the
    /// write queue fills up (or reads are absent), reads otherwise; within
    /// a queue, row-buffer hits go first, then the oldest entry.
    fn schedule(&mut self, now: Cycle) {
        // Hysteresis for write draining.
        if self.write_q.len() * 4 >= self.cfg.write_queue * 3 {
            self.draining_writes = true;
        }
        if self.write_q.is_empty() || self.write_q.len() * 4 <= self.cfg.write_queue {
            self.draining_writes = false;
        }
        // Issue at most one transaction per cycle (one command bus).
        let from_writes = self.draining_writes || self.read_q.is_empty();
        let q = if from_writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        if q.is_empty() {
            return;
        }
        // With every bank busy no entry is schedulable; the FR-FCFS scan
        // below would walk the whole queue to pick nothing.
        if !self.banks.iter().any(|b| b.busy_until <= now) {
            return;
        }
        // FR-FCFS pick: first row hit on a free bank, else oldest on a free
        // bank.
        let mut pick: Option<usize> = None;
        for (i, t) in q.iter().enumerate() {
            if self.banks[t.bank].busy_until > now {
                continue;
            }
            if self.banks[t.bank].open_row == Some(t.row) {
                pick = Some(i);
                break;
            }
            if pick.is_none() {
                pick = Some(i);
            }
        }
        let Some(idx) = pick else { return };
        let mut t = q.remove(idx).expect("index valid");
        let bank_idx = t.bank;
        let row = t.row;
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.busy_until);
        let access = match bank.open_row {
            Some(r) if r == row => {
                self.stats.row_hits += 1;
                self.cfg.t_cas
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => self.cfg.t_rcd + self.cfg.t_cas,
        };
        bank.open_row = Some(row);
        // Timeline: the bank begins servicing this transaction at `start`.
        for w in &t.waiters {
            if w.journey != NO_JOURNEY && self.journey_marks.len() < JOURNEY_MARKS_CAP {
                self.journey_marks.push((w.journey, start));
            }
        }
        let data_ready = start + access;
        let xfer_start = data_ready.max(self.bus_free_at);
        let done = xfer_start + self.burst;
        self.bus_free_at = done;
        bank.busy_until = data_ready;
        t.done_at = Some(done);
        self.earliest_done = self.earliest_done.min(done);
        self.in_flight.push(t);
    }

    /// Drain one (journey id, bank-service-start cycle) mark recorded by
    /// the scheduler. The engine pulls these every tick and forwards them
    /// to the timeline recorder.
    #[inline]
    pub fn pop_journey_mark(&mut self) -> Option<(u32, Cycle)> {
        self.journey_marks.pop()
    }

    /// Outstanding work (for quiescence checks).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.read_q.len() + self.write_q.len() + self.in_flight.len()
    }

    /// Queued reads not yet issued to a bank (deadlock diagnostics).
    #[must_use]
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Queued writebacks not yet issued to a bank (deadlock diagnostics).
    #[must_use]
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// Transactions issued to a bank and awaiting completion.
    #[must_use]
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Conservative wake-up time for the event engine: the earliest
    /// future cycle at which [`Dram::tick`] could change state. Queued
    /// transactions contend for the command bus every cycle (the FR-FCFS
    /// pick depends on bank state, so the controller must be consulted
    /// each cycle while a queue is occupied); otherwise the next event is
    /// the earliest in-flight completion. `None` means the controller is
    /// completely idle.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.read_q.is_empty() || !self.write_q.is_empty() {
            return Some(now + 1);
        }
        self.in_flight.iter().filter_map(|t| t.done_at).min()
    }

    /// Counts speculative fills still unclaimed in the DDRP buffer as
    /// wasted (end-of-simulation accounting).
    pub fn drain_ddrp_residue(&mut self) {
        self.stats.spec_wasted += self.ddrp.len() as u64;
        self.ddrp.clear();
    }
}

/// The DRAM controller as a scheduled component: ticking drains completed
/// transactions into the shared output buffer (the engine routes them up
/// the hierarchy), and the wake-up contract is [`Dram::next_event`].
impl tlp_events::Component for Dram {
    type Ctx = Vec<Request>;

    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        self.next_event(now)
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<Request>) -> Option<Cycle> {
        Dram::tick_into(self, now, done);
        self.next_event(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::hooks::OffChipTag;

    fn dram() -> Dram {
        Dram::new(SystemConfig::cascade_lake(1).dram)
    }

    fn read_req(id: u64, paddr: u64) -> Request {
        Request::demand_load(id, 0, 0, paddr, paddr, id, OffChipTag::none(), 0)
    }

    fn run_until_done(d: &mut Dram, mut now: Cycle, limit: Cycle) -> (Vec<Request>, Cycle) {
        let mut out = Vec::new();
        while now < limit {
            out.extend(d.tick(now));
            if !out.is_empty() && d.pending() == 0 {
                break;
            }
            now += 1;
        }
        (out, now)
    }

    #[test]
    fn read_completes_with_closed_row_timing() {
        let mut d = dram();
        assert!(d.push_read(read_req(1, 0x1000)).is_ok());
        let (done, when) = run_until_done(&mut d, 0, 10_000);
        assert_eq!(done.len(), 1);
        // tRCD + tCAS + burst = 24 + 24 + 19 = 67.
        assert_eq!(when, 67);
        assert_eq!(d.stats.reads, 1);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let mut d = dram();
        // Same bank (lines 8 apart with 8 banks), same row.
        d.push_read(read_req(1, 0x0)).unwrap();
        d.push_read(read_req(2, 8 * 64)).unwrap();
        let (done, when_hits) = run_until_done(&mut d, 0, 10_000);
        assert_eq!(done.len(), 2);
        assert!(d.stats.row_hits >= 1);

        // Same bank, different row → conflict.
        let mut d2 = dram();
        d2.push_read(read_req(1, 0x0)).unwrap();
        let banks = 8u64;
        let row_bytes = 8192u64;
        d2.push_read(read_req(2, row_bytes * banks)).unwrap(); // same bank 0, next row
        let (done2, when_conflict) = run_until_done(&mut d2, 0, 10_000);
        assert_eq!(done2.len(), 2);
        assert!(d2.stats.row_conflicts >= 1);
        assert!(when_conflict > when_hits, "conflict must be slower");
    }

    #[test]
    fn bus_serializes_bank_parallel_reads() {
        let mut d = dram();
        // Four different banks: bank latencies overlap, bus serializes.
        for i in 0..4u64 {
            d.push_read(read_req(i, i * 64)).unwrap();
        }
        let (done, when) = run_until_done(&mut d, 0, 10_000);
        assert_eq!(done.len(), 4);
        // Lower bound: one access latency + 4 bursts.
        assert!(when >= 48 + 4 * 19, "bus contention not modelled: {when}");
    }

    #[test]
    fn same_line_reads_merge() {
        let mut d = dram();
        d.push_read(read_req(1, 0x2000)).unwrap();
        d.push_read(read_req(2, 0x2008)).unwrap();
        assert_eq!(d.stats.reads, 1, "merged read must not double-count");
        let (done, _) = run_until_done(&mut d, 0, 10_000);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn read_queue_full_rejects() {
        let mut d = dram();
        let cap = SystemConfig::cascade_lake(1).dram.read_queue;
        for i in 0..cap as u64 {
            assert!(d.push_read(read_req(i, 0x10_0000 + i * 64)).is_ok());
        }
        assert!(d.push_read(read_req(999, 0x90_0000)).is_err());
        assert_eq!(d.stats.read_queue_full, 1);
    }

    #[test]
    fn speculative_fill_lands_in_ddrp_and_is_claimed() {
        let mut d = dram();
        let spec = Request::speculative(1, 0, 0x400, 0x3000, 0x3000, 0);
        d.push_speculative(spec).unwrap();
        assert_eq!(d.stats.spec_reads, 1);
        let (done, _) = run_until_done(&mut d, 0, 200);
        assert!(done.is_empty(), "spec fills park in the DDRP buffer");
        assert!(d.take_ddrp(0, 0x3000));
        assert!(!d.take_ddrp(0, 0x3000), "claimed entries disappear");
        assert_eq!(d.stats.spec_consumed, 1);
    }

    #[test]
    fn demand_merges_into_inflight_spec() {
        let mut d = dram();
        d.push_speculative(Request::speculative(1, 0, 0x400, 0x3000, 0x3000, 0))
            .unwrap();
        // Demand arrives while the spec is still pending.
        d.tick(0);
        d.push_read(read_req(2, 0x3000)).unwrap();
        assert_eq!(d.stats.reads, 0, "demand reuses the spec transaction");
        assert_eq!(d.stats.spec_consumed, 1);
        let (done, _) = run_until_done(&mut d, 1, 10_000);
        assert_eq!(done.len(), 1, "demand waiter completes");
        assert_eq!(d.stats.transactions(), 1);
    }

    #[test]
    fn spec_dedups_against_existing_traffic() {
        let mut d = dram();
        d.push_read(read_req(1, 0x4000)).unwrap();
        assert!(d
            .push_speculative(Request::speculative(2, 0, 0, 0x4000, 0x4000, 0))
            .is_err());
        assert_eq!(d.stats.spec_reads, 0, "redundant spec must be dropped");
    }

    #[test]
    fn writes_count_as_transactions() {
        let mut d = dram();
        assert!(d.push_write(0x5000, 0));
        let _ = run_until_done(&mut d, 0, 10_000);
        assert_eq!(d.stats.writes, 1);
        assert_eq!(d.stats.transactions(), 1);
    }

    #[test]
    fn write_drain_mode_kicks_in() {
        let mut d = dram();
        let cap = SystemConfig::cascade_lake(1).dram.write_queue;
        for i in 0..(cap * 3 / 4 + 1) as u64 {
            d.push_write(0x10_0000 + i * 64, 0);
        }
        d.push_read(read_req(1, 0x9000)).unwrap();
        // With draining active, the first scheduled transaction is a write.
        d.tick(0);
        assert!(
            d.in_flight.iter().any(|t| t.is_write),
            "write drain did not trigger"
        );
    }

    #[test]
    fn ddrp_residue_counts_wasted() {
        let mut d = dram();
        d.push_speculative(Request::speculative(1, 0, 0, 0x7000, 0x7000, 0))
            .unwrap();
        let _ = run_until_done(&mut d, 0, 200);
        d.drain_ddrp_residue();
        assert_eq!(d.stats.spec_wasted, 1);
    }

    /// The move-based rejection contract: a `push_read` refused because
    /// the queue is full hands back the *same* request, every field
    /// intact, so the engine's retry queue can resubmit it verbatim.
    #[test]
    fn rejected_push_read_returns_request_intact() {
        let mut d = dram();
        let cap = SystemConfig::cascade_lake(1).dram.read_queue;
        // Distinct lines so nothing merges; never tick, so nothing drains.
        for i in 0..cap as u64 {
            d.push_read(read_req(i, 0x10_0000 + i * 64)).unwrap();
        }
        let mut req = read_req(999, 0x90_0000);
        req.pc = 0x1234;
        req.vaddr = 0xdead_beef;
        let tag = req.offchip;
        let err = d.push_read(req).expect_err("queue is full");
        assert_eq!(err.id, 999);
        assert_eq!(err.pc, 0x1234);
        assert_eq!(err.vaddr, 0xdead_beef);
        assert_eq!(err.paddr, 0x90_0000);
        assert_eq!(err.lq_seq, Some(999));
        assert_eq!(err.kind, ReqKind::Load);
        assert_eq!(err.offchip.decision, tag.decision);
        assert!(err.served_from.is_none());
        assert_eq!(d.stats.read_queue_full, 1);
        // A rejected speculative push is handed back too.
        let spec = Request::speculative(1000, 0, 0x40, 0x8000, 0x8000, 5);
        let err = d.push_speculative(spec).expect_err("queue still full");
        assert_eq!(err.id, 1000);
        assert_eq!(err.born, 5);
        assert_eq!(d.stats.spec_dropped, 1);
    }
}
