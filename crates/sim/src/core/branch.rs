//! Hashed-perceptron branch predictor (Table III's "Branch Predictor:
//! hashed-perceptron"), built on the shared perceptron substrate.
//!
//! Features: the branch PC and three global-history segments XOR-mixed with
//! the PC — the standard hashed-perceptron feature set. Branch targets come
//! from the trace, so the BTB is modelled as ideal (documented in
//! DESIGN.md); only direction mispredictions cost cycles.

use tlp_perceptron::{combine, HashedPerceptron, TableSpec};

/// Direction predictor with global-history features.
#[derive(Debug)]
pub struct BranchPredictor {
    perceptron: HashedPerceptron,
    ghr: u64,
    theta: i32,
}

impl BranchPredictor {
    /// Creates the predictor with its default geometry
    /// (4 tables × 4096 × 6-bit weights ≈ 12 KB).
    #[must_use]
    pub fn new() -> Self {
        let spec = TableSpec::new(4096, 6);
        Self {
            perceptron: HashedPerceptron::new(&[spec, spec, spec, spec]),
            ghr: 0,
            theta: 34, // ≈ 1.93 × effective history + 14
        }
    }

    fn hashes(&self, pc: u64) -> [u64; 4] {
        [
            pc,
            combine(pc, self.ghr & 0xffff),
            combine(pc, (self.ghr >> 16) & 0xffff),
            combine(pc, (self.ghr >> 32) & 0xffff_ffff),
        ]
    }

    /// Predicts the direction of the branch at `pc`, then trains with the
    /// actual `taken` outcome and updates history. Returns the prediction
    /// made *before* training (trace-driven operation: predict and resolve
    /// at the same pipeline point).
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        let hashes = self.hashes(pc);
        let idx = self.perceptron.indices(&hashes);
        let sum = self.perceptron.sum(&idx);
        let prediction = sum >= 0;
        self.perceptron
            .train_thresholded(&idx, taken, sum, self.theta);
        self.ghr = (self.ghr << 1) | u64::from(taken);
        prediction
    }

    /// Storage in bits (weights only).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.perceptron.storage_bits()
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_loop() {
        let mut bp = BranchPredictor::new();
        let pc = 0x4000;
        let mut correct = 0;
        for _ in 0..200 {
            if bp.predict_and_train(pc, true) {
                correct += 1;
            }
        }
        assert!(
            correct > 180,
            "failed to learn a monotone branch: {correct}"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = BranchPredictor::new();
        let pc = 0x5000;
        let mut correct = 0;
        for i in 0..2000 {
            let taken = i % 2 == 0;
            if bp.predict_and_train(pc, taken) == taken {
                correct += 1;
            }
        }
        assert!(
            correct > 1600,
            "alternating pattern should be learnable with history: {correct}"
        );
    }

    #[test]
    fn random_branches_are_hard() {
        let mut bp = BranchPredictor::new();
        // A pseudo-random but deterministic pattern.
        let mut x = 0x12345u64;
        let mut correct = 0;
        let n = 2000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            if bp.predict_and_train(0x6000, taken) == taken {
                correct += 1;
            }
        }
        assert!(
            correct < n * 7 / 10,
            "predictor cannot beat randomness: {correct}/{n}"
        );
    }

    #[test]
    fn storage_is_about_12kb() {
        let bp = BranchPredictor::new();
        assert_eq!(bp.storage_bits(), 4 * 4096 * 6);
    }
}
