//! The out-of-order core model: 4-wide fetch/issue/retire, a 224-entry ROB
//! with true register-dependency tracking, load/store queues,
//! store-to-load forwarding, and a hashed-perceptron branch predictor.
//!
//! The core communicates with the memory hierarchy through the engine:
//! [`Core::schedule`] emits ready loads, the engine translates and issues
//! them, and [`Core::complete_load`] wakes the dependent instructions when
//! the data returns.

pub mod branch;

use std::collections::VecDeque;

use tlp_trace::{Op, Reg, TraceRecord};

use crate::config::CoreConfig;
use crate::hooks::OffChipTag;
use crate::stats::CoreStats;
use crate::types::Cycle;

use branch::BranchPredictor;

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Dispatched, waiting for operands or structural resources.
    Waiting,
    /// Load issued to the memory hierarchy, waiting for data.
    WaitingMemory,
    /// Finished executing at `exec_done_at`.
    Done,
}

/// Producer-seq sentinel for "no dependency" (`seq` never reaches it).
/// A plain `u64` beats `Option<u64>` here: the pair shrinks from 32 to
/// 16 bytes, and the scheduler scan walks thousands of entries per
/// simulated kilocycle, so entry footprint is scan bandwidth.
const NO_DEP: u64 = u64::MAX;

/// `repr(C)` pins the declared field order: everything the scheduler
/// scan reads before deciding to issue (`state`, `dispatched_at`,
/// `deps`, `seq`) sits in the first 48 bytes, so a scan that skips or
/// rejects an entry touches one cache line, not the whole ~100-byte
/// entry.
#[derive(Debug, Clone)]
#[repr(C)]
struct RobEntry {
    state: EntryState,
    /// Set when the engine issued the delayed speculative DRAM request.
    spec_issued: bool,
    /// Branch mispredicted at dispatch.
    mispredicted: bool,
    dispatched_at: Cycle,
    deps: [u64; 2],
    seq: u64,
    exec_done_at: Cycle,
    rec: TraceRecord,
    /// Off-chip prediction tag (loads).
    offchip: OffChipTag,
}

/// A load the core wants to send to the L1D this cycle.
#[derive(Debug, Clone, Copy)]
pub struct LoadIssue {
    /// ROB sequence number (the completion handle).
    pub seq: u64,
    /// Load PC.
    pub pc: u64,
    /// Virtual address.
    pub vaddr: u64,
    /// Off-chip prediction tag attached at dispatch.
    pub offchip: OffChipTag,
}

/// A store leaving the store buffer toward the L1D write port.
#[derive(Debug, Clone, Copy)]
pub struct StoreIssue {
    /// Store PC.
    pub pc: u64,
    /// Virtual address.
    pub vaddr: u64,
}

/// Completion details handed back to the engine for predictor training.
#[derive(Debug, Clone, Copy)]
pub struct CompletedLoad {
    /// Load PC.
    pub pc: u64,
    /// Virtual address.
    pub vaddr: u64,
    /// The tag the off-chip predictor produced at dispatch.
    pub offchip: OffChipTag,
    /// Whether a speculative DRAM request was actually issued for this load
    /// (immediately or via the selective-delay path).
    pub spec_issued: bool,
}

/// What dispatch needs from the engine for each new load: a consult of the
/// off-chip predictor.
pub trait DispatchHooks {
    /// Consult the off-chip predictor for a load dispatched now.
    fn predict_load(&mut self, pc: u64, vaddr: u64, cycle: Cycle) -> OffChipTag;
}

/// The out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    /// Sequence number of the oldest un-retired entry.
    front_seq: u64,
    rename: [Option<u64>; Reg::COUNT],
    /// Loads in flight (LQ occupancy).
    lq_used: usize,
    /// Stores between dispatch and retirement (SQ occupancy).
    sq_used: usize,
    /// Retired stores waiting for the L1D write port.
    store_buffer: VecDeque<StoreIssue>,
    /// In-ROB stores as `(seq, word address)`, FIFO by seq: the
    /// store-to-load-forwarding check scans these few entries instead of
    /// the whole ROB prefix. Pushed at dispatch, popped at retirement
    /// (stores retire in order, so the front is always the oldest).
    store_words: VecDeque<(u64, u64)>,
    /// How many ROB entries are in [`EntryState::Waiting`]. Entries enter
    /// Waiting only at dispatch and leave only inside
    /// [`Core::schedule_into`], so the count is exact — and when it is
    /// zero (memory-bound stall: everything in flight or done) the
    /// scheduler scan is skipped entirely.
    waiting_count: usize,
    /// Lower bound on the seq of the oldest Waiting entry: every entry
    /// with a smaller seq is known not to be Waiting, so scans start here
    /// instead of at the ROB head. Purely an iteration-skip hint — which
    /// entries get examined (and in what order) is unchanged.
    first_waiting_seq: u64,
    branch: BranchPredictor,
    /// Dispatch is stalled until this branch seq resolves.
    stall_on_branch: Option<u64>,
    /// Earliest cycle fetch may resume after a redirect.
    fetch_resume_at: Cycle,
    /// A fetched record waiting out a structural hazard (LQ/SQ full).
    pending_rec: Option<TraceRecord>,
    /// Counters.
    pub stats: CoreStats,
    stats_frozen: bool,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("rob", &self.rob.len())
            .field("next_seq", &self.next_seq)
            .field("lq_used", &self.lq_used)
            .field("sq_used", &self.sq_used)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates an idle core.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Self {
        Self {
            cfg,
            rob: VecDeque::with_capacity(cfg.rob),
            next_seq: 0,
            front_seq: 0,
            rename: [None; Reg::COUNT],
            lq_used: 0,
            sq_used: 0,
            store_buffer: VecDeque::new(),
            store_words: VecDeque::new(),
            waiting_count: 0,
            first_waiting_seq: 0,
            branch: BranchPredictor::new(),
            stall_on_branch: None,
            fetch_resume_at: 0,
            pending_rec: None,
            stats: CoreStats::default(),
            stats_frozen: false,
        }
    }

    /// Total instructions retired since construction (not reset by
    /// [`Core::reset_stats`]).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.front_seq
    }

    /// Current ROB occupancy (timeline gauge).
    #[must_use]
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Zeroes the measurement counters (end of warmup). Microarchitectural
    /// state (ROB, predictors, queues) is preserved.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
        self.stats_frozen = false;
    }

    /// Freezes the counters (this core finished its measured window).
    pub fn freeze_stats(&mut self) {
        self.stats_frozen = true;
    }

    /// True when the counters are frozen.
    #[must_use]
    pub fn stats_frozen(&self) -> bool {
        self.stats_frozen
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        if seq < self.front_seq {
            return None;
        }
        let idx = (seq - self.front_seq) as usize;
        self.rob.get_mut(idx)
    }

    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        if seq < self.front_seq {
            return None;
        }
        let idx = (seq - self.front_seq) as usize;
        self.rob.get(idx)
    }

    fn dep_ready(&self, dep: u64, now: Cycle) -> bool {
        match dep {
            NO_DEP => true,
            seq => {
                if seq < self.front_seq {
                    return true; // producer retired
                }
                let idx = (seq - self.front_seq) as usize;
                match self.rob.get(idx) {
                    Some(e) => e.state == EntryState::Done && e.exec_done_at <= now,
                    None => true,
                }
            }
        }
    }

    /// Dispatches up to `fetch_width` instructions from the trace.
    /// Returns false when the trace is exhausted.
    pub fn dispatch(
        &mut self,
        now: Cycle,
        trace: &mut dyn FnMut() -> Option<TraceRecord>,
        hooks: &mut dyn DispatchHooks,
    ) -> bool {
        if now < self.fetch_resume_at {
            return true;
        }
        // A pending mispredicted branch blocks fetch until it resolves.
        if let Some(bseq) = self.stall_on_branch {
            if let Some(e) = self.entry_mut(bseq) {
                if e.state == EntryState::Done {
                    let resume = e.exec_done_at + self.cfg.mispredict_penalty;
                    self.fetch_resume_at = resume;
                    self.stall_on_branch = None;
                }
            } else {
                self.stall_on_branch = None;
            }
            if self.stall_on_branch.is_some() || now < self.fetch_resume_at {
                return true;
            }
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob {
                break;
            }
            // Use the hazard-stalled record first; never drop instructions.
            let rec = match self.pending_rec.take() {
                Some(r) => r,
                None => match trace() {
                    None => return false,
                    Some(r) => r,
                },
            };
            let blocked = match rec.op {
                Op::Load => self.lq_used >= self.cfg.load_queue,
                Op::Store => self.sq_used >= self.cfg.store_queue,
                _ => false,
            };
            if blocked {
                self.pending_rec = Some(rec);
                break;
            }
            if !self.dispatch_one(rec, now, hooks) {
                break;
            }
        }
        true
    }

    /// Dispatches one record (capacity already checked). Returns false when
    /// dispatch must stop for this cycle (mispredicted branch).
    fn dispatch_one(
        &mut self,
        rec: TraceRecord,
        now: Cycle,
        hooks: &mut dyn DispatchHooks,
    ) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        let deps = [
            rec.src1
                .and_then(|r| self.rename[r.index()])
                .unwrap_or(NO_DEP),
            rec.src2
                .and_then(|r| self.rename[r.index()])
                .unwrap_or(NO_DEP),
        ];
        let mut entry = RobEntry {
            seq,
            rec,
            state: EntryState::Waiting,
            exec_done_at: 0,
            deps,
            dispatched_at: now,
            offchip: OffChipTag::none(),
            spec_issued: false,
            mispredicted: false,
        };
        match rec.op {
            Op::Load => {
                self.lq_used += 1;
                entry.offchip = hooks.predict_load(rec.pc, rec.addr, now);
            }
            Op::Store => {
                self.sq_used += 1;
                self.store_words.push_back((seq, rec.addr & !7));
            }
            Op::Branch => {
                let predicted = self.branch.predict_and_train(rec.pc, rec.taken);
                if predicted != rec.taken {
                    entry.mispredicted = true;
                    self.stall_on_branch = Some(seq);
                    if !self.stats_frozen {
                        self.stats.mispredicts += 1;
                    }
                }
            }
            _ => {}
        }
        if let Some(dst) = rec.dst {
            self.rename[dst.index()] = Some(seq);
        }
        if self.waiting_count == 0 {
            self.first_waiting_seq = seq;
        }
        self.waiting_count += 1;
        self.rob.push_back(entry);
        // Stop dispatching past a mispredicted branch this cycle.
        self.stall_on_branch.is_none()
    }

    /// Starts execution of ready instructions (up to `issue_width`, with at
    /// most `l1d_ports` loads sent to memory). Returns the loads the engine
    /// must translate and issue; store-to-load-forwarded loads complete
    /// internally. Allocating convenience wrapper around
    /// [`Core::schedule_into`] for tests and simple callers.
    pub fn schedule(&mut self, now: Cycle) -> Vec<LoadIssue> {
        let mut out = Vec::new();
        self.schedule_into(now, &mut out);
        out
    }

    /// As [`Core::schedule`], appending issued loads to a caller-provided
    /// buffer — the engine reuses one scratch `Vec` across cores and
    /// cycles so the per-cycle path allocates nothing here.
    pub fn schedule_into(&mut self, now: Cycle, out: &mut Vec<LoadIssue>) {
        // Fast path for memory-bound stalls: everything is in flight or
        // done, so there is nothing the scheduler could issue.
        if self.waiting_count == 0 {
            return;
        }
        let mut issued = 0;
        let mut loads_issued = 0;
        let window = self.cfg.sched_window;
        let mut examined = 0;
        // Skip the known non-Waiting prefix; the entries examined (and
        // their order) are identical to a scan from the ROB head.
        let start = (self.first_waiting_seq.saturating_sub(self.front_seq)) as usize;
        for idx in start..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if examined >= window {
                break;
            }
            let e = &self.rob[idx];
            if e.state != EntryState::Waiting {
                continue;
            }
            examined += 1;
            if e.dispatched_at >= now {
                continue;
            }
            // Dep readiness is monotone (a producer never un-finishes), so
            // a dep observed ready is cleared to `None` — entries examined
            // across many cycles pay each producer lookup once, not per
            // tick. `dep_ready(None)` is true, so nothing downstream (the
            // issue check here, `next_wake`'s candidate scan) can tell a
            // cleared dep from a ready one.
            let deps = e.deps;
            if !self.dep_ready(deps[0], now) {
                continue;
            }
            if deps[0] != NO_DEP {
                self.rob[idx].deps[0] = NO_DEP;
            }
            if !self.dep_ready(deps[1], now) {
                continue;
            }
            if deps[1] != NO_DEP {
                self.rob[idx].deps[1] = NO_DEP;
            }
            let e = &self.rob[idx];
            let seq = e.seq;
            let rec = e.rec;
            match rec.op {
                Op::Alu => {
                    let e = &mut self.rob[idx];
                    e.state = EntryState::Done;
                    e.exec_done_at = now + 1;
                    self.waiting_count -= 1;
                    issued += 1;
                }
                Op::Fp => {
                    let lat = self.cfg.fp_latency;
                    let e = &mut self.rob[idx];
                    e.state = EntryState::Done;
                    e.exec_done_at = now + lat;
                    self.waiting_count -= 1;
                    issued += 1;
                }
                Op::Branch => {
                    let e = &mut self.rob[idx];
                    e.state = EntryState::Done;
                    e.exec_done_at = now + 1;
                    self.waiting_count -= 1;
                    issued += 1;
                }
                Op::Store => {
                    // Address generation; the write happens post-retirement.
                    let e = &mut self.rob[idx];
                    e.state = EntryState::Done;
                    e.exec_done_at = now + 1;
                    self.waiting_count -= 1;
                    issued += 1;
                }
                Op::Load => {
                    if loads_issued >= self.cfg.l1d_ports {
                        continue;
                    }
                    // Store-to-load forwarding: an older in-flight store to
                    // the same 8-byte word supplies the data directly.
                    if self.older_store_matches(seq, rec.addr) {
                        let e = &mut self.rob[idx];
                        e.state = EntryState::Done;
                        e.exec_done_at = now + 1;
                        self.waiting_count -= 1;
                        self.lq_used -= 1;
                        if !self.stats_frozen {
                            self.stats.store_forwards += 1;
                        }
                        issued += 1;
                        continue;
                    }
                    let offchip = self.rob[idx].offchip;
                    let e = &mut self.rob[idx];
                    e.state = EntryState::WaitingMemory;
                    self.waiting_count -= 1;
                    out.push(LoadIssue {
                        seq,
                        pc: rec.pc,
                        vaddr: rec.addr,
                        offchip,
                    });
                    issued += 1;
                    loads_issued += 1;
                }
            }
        }
        // Advance the hint in a separate tight scan: the main loop stays
        // free of per-iteration bookkeeping (an extra live value there
        // spills the hot loop's registers), and this scan stops at the
        // first entry that is still Waiting — exactly the prefix the next
        // call can skip. With nothing Waiting the stale hint is harmless:
        // the fast path above returns before reading it.
        if self.waiting_count > 0 {
            let mut idx = start;
            while idx < self.rob.len() && self.rob[idx].state != EntryState::Waiting {
                idx += 1;
            }
            self.first_waiting_seq = self.front_seq + idx as u64;
        }
    }

    fn older_store_matches(&self, load_seq: u64, addr: u64) -> bool {
        let word = addr & !7;
        // In-ROB older stores: `store_words` holds exactly the in-ROB
        // stores in seq order, so this scans a handful of stores instead
        // of the whole ROB prefix. Entries at or past the load are not
        // "older" — stop there.
        for &(seq, w) in &self.store_words {
            if seq >= load_seq {
                break;
            }
            if w == word {
                return true;
            }
        }
        // Retired stores still in the store buffer.
        self.store_buffer.iter().any(|s| s.vaddr & !7 == word)
    }

    /// The engine reports that the load `seq` has its data.
    pub fn complete_load(&mut self, seq: u64, now: Cycle) -> Option<CompletedLoad> {
        let e = self.entry_mut(seq)?;
        if e.state != EntryState::WaitingMemory {
            return None;
        }
        e.state = EntryState::Done;
        e.exec_done_at = now;
        let done = CompletedLoad {
            pc: e.rec.pc,
            vaddr: e.rec.addr,
            offchip: e.offchip,
            spec_issued: e.spec_issued,
        };
        self.lq_used -= 1;
        Some(done)
    }

    /// Marks that the engine issued the delayed speculative DRAM request
    /// for load `seq` (selective-delay bookkeeping).
    pub fn mark_spec_issued(&mut self, seq: u64) {
        if let Some(e) = self.entry_mut(seq) {
            e.spec_issued = true;
        }
    }

    /// Retires completed instructions in order (up to `retire_width`).
    /// Returns the number retired; stores move to the store buffer.
    pub fn retire(&mut self, now: Cycle) -> usize {
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(e) = self.rob.front() else { break };
            if e.state != EntryState::Done || e.exec_done_at > now {
                break;
            }
            if e.rec.op == Op::Store && self.store_buffer.len() >= self.cfg.store_queue {
                break; // store buffer full: stall retirement
            }
            let e = self.rob.pop_front().expect("checked front");
            self.front_seq = e.seq + 1;
            if let Some(dst) = e.rec.dst {
                if self.rename[dst.index()] == Some(e.seq) {
                    self.rename[dst.index()] = None;
                }
            }
            if e.rec.op == Op::Store {
                self.sq_used -= 1;
                let popped = self.store_words.pop_front();
                debug_assert_eq!(popped.map(|(s, _)| s), Some(e.seq));
                self.store_buffer.push_back(StoreIssue {
                    pc: e.rec.pc,
                    vaddr: e.rec.addr,
                });
            }
            if !self.stats_frozen {
                self.stats.instructions += 1;
                match e.rec.op {
                    Op::Load => self.stats.loads += 1,
                    Op::Store => self.stats.stores += 1,
                    Op::Branch => self.stats.branches += 1,
                    _ => {}
                }
            }
            retired += 1;
        }
        retired
    }

    /// Pops one store from the store buffer (the L1D write port drain).
    pub fn pop_store(&mut self) -> Option<StoreIssue> {
        self.store_buffer.pop_front()
    }

    /// Outstanding work: in-flight ROB entries plus buffered stores and any
    /// hazard-stalled fetched record.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.rob.len() + self.store_buffer.len() + usize::from(self.pending_rec.is_some())
    }

    /// O(1) front-half of [`Core::next_wake`]: true when the core is
    /// certain to have work on the very next cycle (a store to drain, a
    /// retirable head, or an unobstructed fetch). The event engine asks
    /// this before paying for the full ROB scan — on busy cycles it
    /// almost always answers the scheduling question by itself.
    #[must_use]
    pub fn wants_next_cycle(&self, now: Cycle, trace_done: bool) -> bool {
        if !self.store_buffer.is_empty() {
            return true;
        }
        if let Some(e) = self.rob.front() {
            if e.state == EntryState::Done && e.exec_done_at <= now + 1 {
                return true;
            }
        }
        if self.fetch_resume_at <= now + 1 {
            match self.stall_on_branch {
                // Stall resolution happens on the next dispatch call
                // regardless of ROB occupancy (dispatch checks the stall
                // before the capacity-gated fetch loop).
                Some(bseq) if self.entry(bseq).is_none_or(|e| e.state == EntryState::Done) => {
                    return true;
                }
                Some(_) => {}
                None if self.rob.len() < self.cfg.rob => {
                    let hazard_blocked = match &self.pending_rec {
                        Some(r) => match r.op {
                            Op::Load => self.lq_used >= self.cfg.load_queue,
                            Op::Store => self.sq_used >= self.cfg.store_queue,
                            _ => false,
                        },
                        None => false,
                    };
                    if (self.pending_rec.is_some() || !trace_done) && !hazard_blocked {
                        return true;
                    }
                }
                None => {}
            }
        }
        false
    }

    /// Conservative wake-up time for the event engine: the earliest
    /// future cycle at which one of the core's per-cycle stages
    /// ([`Core::retire`], [`Core::dispatch`], [`Core::schedule`], the
    /// store-buffer drain) could change state with **no external input**
    /// (no cache fill, no [`Core::complete_load`]). `None` means the core
    /// is fully blocked on memory: every runnable path waits on a load in
    /// flight, so only a fill can make it runnable again.
    ///
    /// The contract mirrors `tlp_events::Component::next_tick`: waking
    /// too early is a harmless no-op tick, waking too late would change
    /// simulated behavior, so every internal state transition below is
    /// accounted for. `trace_done` is the engine's trace-exhaustion flag
    /// (the core itself cannot probe the trace without consuming it).
    #[must_use]
    pub fn next_wake(&self, now: Cycle, trace_done: bool) -> Option<Cycle> {
        let soonest = now + 1;
        // The store buffer drains one store per cycle unconditionally.
        if !self.store_buffer.is_empty() {
            return Some(soonest);
        }
        let mut wake = Cycle::MAX;
        // Retirement: the ROB head finished executing at a known time.
        if let Some(e) = self.rob.front() {
            if e.state == EntryState::Done {
                wake = wake.min(e.exec_done_at.max(soonest));
            }
        }
        // Dispatch. Mutation paths: resolving a completed mispredicted
        // branch, and fetching from the trace / the hazard-stalled record.
        if wake > soonest {
            match self.stall_on_branch {
                // The next dispatch call at/after `fetch_resume_at`
                // clears the stall once the branch has executed (its
                // state flips to Done the cycle it is scheduled) or left
                // the ROB — **regardless of ROB occupancy**: dispatch
                // checks the stall before the capacity-gated fetch loop,
                // so a full ROB must not suppress this wake-up (the
                // resolution stamps `fetch_resume_at` with the mispredict
                // penalty; deferring it past the branch's retirement
                // would skip the penalty). A still-waiting branch is
                // covered by the scheduler scan below.
                Some(bseq) if self.entry(bseq).is_none_or(|e| e.state == EntryState::Done) => {
                    wake = wake.min(self.fetch_resume_at.max(soonest));
                }
                Some(_) => {}
                None if self.rob.len() < self.cfg.rob => {
                    let hazard_blocked = match &self.pending_rec {
                        Some(r) => match r.op {
                            Op::Load => self.lq_used >= self.cfg.load_queue,
                            Op::Store => self.sq_used >= self.cfg.store_queue,
                            _ => false,
                        },
                        None => false,
                    };
                    let can_fetch = self.pending_rec.is_some() || !trace_done;
                    if can_fetch && !hazard_blocked {
                        wake = wake.min(self.fetch_resume_at.max(soonest));
                    }
                }
                None => {}
            }
        }
        // Scheduler: a waiting entry becomes issueable once every
        // producer has finished at a known time. Producers still waiting
        // (on operands or memory) yield no candidate here — when they
        // execute, that tick re-computes the wake-up. Width limits are
        // ignored: they only make a wake-up a no-op, never late. The scan
        // is bounded to the scheduling window exactly like
        // [`Core::schedule`]: entries past the first `sched_window`
        // Waiting entries cannot issue until the Waiting prefix shrinks,
        // which only happens inside an executed tick — after which this
        // wake-up is recomputed. Bounding cuts the busy-phase walk from
        // the full ROB to the window without ever waking late.
        // `waiting_count`/`first_waiting_seq` skip work, never entries:
        // with nothing Waiting the scan finds no candidate, and the
        // entries before the first Waiting seq are known non-Waiting.
        let start = if self.waiting_count == 0 {
            self.rob.len()
        } else {
            (self.first_waiting_seq.saturating_sub(self.front_seq)) as usize
        };
        let mut examined = 0;
        for e in self.rob.iter().skip(start) {
            if wake == soonest {
                break;
            }
            if e.state != EntryState::Waiting {
                continue;
            }
            examined += 1;
            if examined > self.cfg.sched_window {
                break;
            }
            // Issue starts the cycle after dispatch (`dispatched_at < now`).
            let mut t = (e.dispatched_at + 1).max(soonest);
            let mut known = true;
            for &dep in &e.deps {
                if dep == NO_DEP {
                    continue;
                }
                match self.entry(dep) {
                    None => {} // producer retired: ready
                    Some(p) if p.state == EntryState::Done => {
                        t = t.max(p.exec_done_at).max(soonest);
                    }
                    Some(_) => {
                        known = false;
                        break;
                    }
                }
            }
            if known {
                wake = wake.min(t);
            }
        }
        (wake != Cycle::MAX).then_some(wake)
    }

    /// Dispatch cycle of the oldest un-retired instruction (deadlock
    /// diagnostics: the core whose head has waited longest is stalled).
    #[must_use]
    pub fn oldest_dispatch_cycle(&self) -> Option<Cycle> {
        self.rob.front().map(|e| e.dispatched_at)
    }

    /// Human-readable description of the oldest un-retired instruction,
    /// for deadlock diagnostics.
    #[must_use]
    pub fn oldest_inflight(&self) -> Option<String> {
        self.rob.front().map(|e| {
            let state = match e.state {
                EntryState::Waiting => "waiting on operands",
                EntryState::WaitingMemory => "waiting on memory",
                EntryState::Done => "done, not yet retired",
            };
            format!(
                "seq {} {:?} pc {:#x} addr {:#x} — {state}, dispatched at cycle {}",
                e.seq, e.rec.op, e.rec.pc, e.rec.addr, e.dispatched_at
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    struct NoHooks;
    impl DispatchHooks for NoHooks {
        fn predict_load(&mut self, _pc: u64, _vaddr: u64, _cycle: Cycle) -> OffChipTag {
            OffChipTag::none()
        }
    }

    fn core() -> Core {
        Core::new(SystemConfig::cascade_lake(1).core)
    }

    fn drive(core: &mut Core, recs: &[TraceRecord], cycles: u64) -> u64 {
        drive_range(core, recs, 0, cycles)
    }

    fn drive_range(core: &mut Core, recs: &[TraceRecord], start: u64, end: u64) -> u64 {
        let mut it = recs.iter().copied();
        let mut retired = 0;
        for now in start..end {
            retired += core.retire(now) as u64;
            let mut f = || it.next();
            core.dispatch(now, &mut f, &mut NoHooks);
            let loads = core.schedule(now);
            // Memory model: every load completes 10 cycles later.
            for l in loads {
                // Tests complete loads immediately at +10 by re-calling below;
                // store seq for a tiny completion queue.
                COMPLETIONS.with(|c| c.borrow_mut().push((now + 10, l.seq)));
            }
            COMPLETIONS.with(|c| {
                let mut q = c.borrow_mut();
                let mut i = 0;
                while i < q.len() {
                    if q[i].0 <= now {
                        let (_, seq) = q.remove(i);
                        core.complete_load(seq, now);
                    } else {
                        i += 1;
                    }
                }
            });
        }
        retired
    }

    thread_local! {
        static COMPLETIONS: std::cell::RefCell<Vec<(Cycle, u64)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    fn alu_chain(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord::alu(0x100 + i as u64 * 4, Some(Reg(1)), [Some(Reg(1)), None]))
            .collect()
    }

    fn independent_alus(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                TraceRecord::alu(
                    0x100 + i as u64 * 4,
                    Some(Reg((i % 32) as u8)),
                    [None, None],
                )
            })
            .collect()
    }

    #[test]
    fn independent_alus_retire_at_full_width() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        let retired = drive(&mut c, &independent_alus(400), 250);
        // 4-wide: 400 instructions in ~100 cycles plus pipeline fill.
        assert_eq!(retired, 400);
        assert!(c.stats.instructions == 400);
    }

    #[test]
    fn dependent_chain_is_serialized() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        let n = 100;
        let retired = drive(&mut c, &alu_chain(n), 60);
        // A true dependency chain runs at ~1 IPC, so only ~60 can retire.
        assert!(
            retired < 70,
            "dependency chain retired {retired} in 60 cycles"
        );
    }

    #[test]
    fn loads_wait_for_memory() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        let recs = vec![
            TraceRecord::load(0x100, 0x1000, 8, Reg(1), [None, None]),
            TraceRecord::alu(0x104, Some(Reg(2)), [Some(Reg(1)), None]),
        ];
        let retired = drive(&mut c, &recs, 9);
        assert_eq!(retired, 0, "load takes 10 cycles; nothing retires at 9");
        let retired = drive_range(&mut c, &[], 9, 30);
        assert_eq!(retired, 2, "both retire once the load returns");
    }

    #[test]
    fn store_to_load_forwarding() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        let recs = vec![
            TraceRecord::store(0x100, 0x2000, 8, Some(Reg(1)), None),
            TraceRecord::load(0x104, 0x2000, 8, Reg(2), [None, None]),
        ];
        drive(&mut c, &recs, 20);
        assert_eq!(c.stats.store_forwards, 1);
        assert_eq!(c.stats.instructions, 2);
    }

    #[test]
    fn stores_enter_store_buffer_at_retire() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        let recs = vec![TraceRecord::store(0x100, 0x3000, 8, None, None)];
        drive(&mut c, &recs, 20);
        let s = c.pop_store().expect("store buffered");
        assert_eq!(s.vaddr, 0x3000);
        assert!(c.pop_store().is_none());
    }

    #[test]
    fn mispredicted_branch_stalls_fetch() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        // Untrained predictor predicts not-taken (sum==0 → taken); feed a
        // pattern it has never seen: alternate so some predictions miss.
        let mut recs = Vec::new();
        let mut x = 7u64;
        for i in 0..200u64 {
            x ^= x << 13;
            x ^= x >> 7;
            recs.push(TraceRecord::branch(0x100 + i * 8, x & 1 == 0, 0x100, None));
            recs.push(TraceRecord::alu(0x104 + i * 8, None, [None, None]));
        }
        // 400 instructions at 4-wide would take ~100 cycles unimpeded; with
        // ~50% mispredicts each costing a resolve + redirect, far fewer
        // retire in 150 cycles.
        let retired = drive(&mut c, &recs, 150);
        assert!(c.stats.mispredicts > 10, "random branches must mispredict");
        assert!(
            retired < 300,
            "mispredicts must slow the pipeline: {retired}"
        );
    }

    #[test]
    fn rob_capacity_limits_inflight() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        // Loads that never complete fill the ROB/LQ.
        let recs: Vec<TraceRecord> = (0..300)
            .map(|i| TraceRecord::load(0x100, 0x1000 + i * 64, 8, Reg(1), [None, None]))
            .collect();
        let mut it = recs.iter().copied();
        for now in 0..300 {
            c.retire(now);
            let mut f = || it.next();
            c.dispatch(now, &mut f, &mut NoHooks);
            let _ = c.schedule(now);
        }
        // LQ is 96: dispatch stalls there (no completions ever arrive).
        assert!(c.pending() <= 96 + 1, "LQ overflow: {}", c.pending());
    }

    #[test]
    fn complete_load_is_idempotent() {
        COMPLETIONS.with(|c| c.borrow_mut().clear());
        let mut c = core();
        let recs = [TraceRecord::load(0x100, 0x1000, 8, Reg(1), [None, None])];
        let mut it = recs.iter().copied();
        let mut f = || it.next();
        c.dispatch(0, &mut f, &mut NoHooks);
        let loads = c.schedule(1);
        assert_eq!(loads.len(), 1);
        assert!(c.complete_load(loads[0].seq, 5).is_some());
        assert!(c.complete_load(loads[0].seq, 6).is_none());
    }
}
