//! Lossless (de)serialization of [`SimReport`] for the harness's on-disk
//! result cache.
//!
//! The workspace's `serde` dependency is an offline shim whose derives are
//! no-ops (see `shims/README.md`), so this module hand-rolls the JSON
//! codec. The format mirrors what `serde_json` would emit for the derive:
//! one object per struct, field names as keys, `[u64; 4]` arrays as JSON
//! arrays. Every counter in a report is a `u64` and round-trips exactly;
//! there are no floats in the format, so the codec is lossless by
//! construction (pinned by `report_roundtrip` property tests).
//!
//! The generic [`Value`] layer ([`parse_value`], [`escape`],
//! [`report_from_value`]) is public: `tlp-serve` builds its
//! length-prefixed protocol payloads (requests, per-cell result frames,
//! summaries) on this same codec instead of inventing a second wire
//! format.

use std::fmt;

use crate::stats::{
    CacheStats, CoreReport, CoreStats, DramStats, OffChipStats, PrefetchStats, SimReport,
};
use crate::victim::VictimStats;

/// A malformed cache file: where parsing stopped and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialError {
    /// Byte offset the parser had reached.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for SerialError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Escapes `s` as a JSON string literal (including the surrounding
/// quotes) — the building block for hand-assembled payloads.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    esc(s, &mut out);
    out
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental JSON-object writer (fields in declaration order).
struct ObjWriter {
    out: String,
    first: bool,
}

impl ObjWriter {
    fn new() -> Self {
        Self {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        esc(name, &mut self.out);
        self.out.push(':');
    }

    fn num(&mut self, name: &str, v: u64) {
        self.key(name);
        self.out.push_str(&v.to_string());
    }

    fn arr4(&mut self, name: &str, v: &[u64; 4]) {
        self.key(name);
        self.out.push('[');
        for (i, x) in v.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&x.to_string());
        }
        self.out.push(']');
    }

    fn raw(&mut self, name: &str, v: &str) {
        self.key(name);
        self.out.push_str(v);
    }

    fn str_field(&mut self, name: &str, v: &str) {
        self.key(name);
        esc(v, &mut self.out);
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn cache_stats_json(s: &CacheStats) -> String {
    let mut o = ObjWriter::new();
    o.num("demand_hits", s.demand_hits);
    o.num("demand_misses", s.demand_misses);
    o.num("prefetch_hits", s.prefetch_hits);
    o.num("prefetch_misses", s.prefetch_misses);
    o.num("prefetch_fills", s.prefetch_fills);
    o.num("prefetch_useful", s.prefetch_useful);
    o.num("prefetch_useless", s.prefetch_useless);
    o.num("writebacks", s.writebacks);
    o.num("mshr_stalls", s.mshr_stalls);
    o.finish()
}

fn dram_stats_json(s: &DramStats) -> String {
    let mut o = ObjWriter::new();
    o.num("reads", s.reads);
    o.num("spec_reads", s.spec_reads);
    o.num("writes", s.writes);
    o.num("row_hits", s.row_hits);
    o.num("row_conflicts", s.row_conflicts);
    o.num("read_queue_full", s.read_queue_full);
    o.num("spec_dropped", s.spec_dropped);
    o.num("spec_consumed", s.spec_consumed);
    o.num("spec_wasted", s.spec_wasted);
    o.finish()
}

fn offchip_stats_json(s: &OffChipStats) -> String {
    let mut o = ObjWriter::new();
    o.num("issued_now", s.issued_now);
    o.num("tagged_delayed", s.tagged_delayed);
    o.num("delayed_issued", s.delayed_issued);
    o.num("predicted_onchip", s.predicted_onchip);
    o.arr4("issued_outcome", &s.issued_outcome);
    o.num("missed_offchip", s.missed_offchip);
    o.num("correct_onchip", s.correct_onchip);
    o.finish()
}

fn prefetch_stats_json(s: &PrefetchStats) -> String {
    let mut o = ObjWriter::new();
    o.num("candidates", s.candidates);
    o.num("filtered", s.filtered);
    o.num("dropped", s.dropped);
    o.num("issued", s.issued);
    o.arr4("filled_by_level", &s.filled_by_level);
    o.arr4("useful_by_level", &s.useful_by_level);
    o.arr4("useless_by_level", &s.useless_by_level);
    o.finish()
}

fn core_stats_json(s: &CoreStats) -> String {
    let mut o = ObjWriter::new();
    o.num("instructions", s.instructions);
    o.num("cycles", s.cycles);
    o.num("loads", s.loads);
    o.num("stores", s.stores);
    o.num("branches", s.branches);
    o.num("mispredicts", s.mispredicts);
    o.num("dtlb_misses", s.dtlb_misses);
    o.num("stlb_misses", s.stlb_misses);
    o.num("store_forwards", s.store_forwards);
    o.finish()
}

fn victim_stats_json(s: &VictimStats) -> String {
    let mut o = ObjWriter::new();
    o.num("hits", s.hits);
    o.num("misses", s.misses);
    o.num("insertions", s.insertions);
    o.finish()
}

fn core_report_json(c: &CoreReport) -> String {
    let mut o = ObjWriter::new();
    o.str_field("workload", &c.workload);
    o.raw("core", &core_stats_json(&c.core));
    o.raw("l1d", &cache_stats_json(&c.l1d));
    o.raw("l2", &cache_stats_json(&c.l2));
    o.raw("offchip", &offchip_stats_json(&c.offchip));
    o.raw("l1_prefetch", &prefetch_stats_json(&c.l1_prefetch));
    o.raw("l2_prefetch", &prefetch_stats_json(&c.l2_prefetch));
    o.finish()
}

/// Encodes a report as JSON (the on-disk cache format).
#[must_use]
pub fn report_to_json(r: &SimReport) -> String {
    let mut o = ObjWriter::new();
    let cores: Vec<String> = r.cores.iter().map(core_report_json).collect();
    o.raw("cores", &format!("[{}]", cores.join(",")));
    o.raw("llc", &cache_stats_json(&r.llc));
    o.raw("dram", &dram_stats_json(&r.dram));
    o.raw("victim", &victim_stats_json(&r.victim));
    o.num("total_cycles", r.total_cycles);
    o.finish()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A parsed JSON value (only the shapes the cache and service formats
/// use: unsigned integers, strings, arrays, objects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source order.
    Obj(Vec<(String, Value)>),
}

/// Parses one JSON value, requiring the whole input to be consumed.
///
/// # Errors
///
/// Returns [`SerialError`] on malformed input or trailing data.
pub fn parse_value(text: &str) -> Result<Value, SerialError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after value");
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, SerialError> {
        Err(SerialError {
            offset: self.pos,
            message: message.to_owned(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SerialError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, SerialError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn number(&mut self) -> Result<Value, SerialError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        match text.parse::<u64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => self.err("integer out of u64 range"),
        }
    }

    fn string(&mut self) -> Result<String, SerialError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'/') => out.push('/'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| SerialError {
                            offset: self.pos,
                            message: "invalid UTF-8".to_owned(),
                        })?
                        .chars()
                        .next()
                        .expect("non-empty checked above");
                    out.push(s);
                    self.pos += s.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, SerialError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, SerialError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn missing(field: &str) -> SerialError {
    SerialError {
        offset: 0,
        message: format!("missing or mistyped field '{field}'"),
    }
}

impl Value {
    /// The fields of an object value.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] when `self` is not an object.
    pub fn obj(&self) -> Result<&[(String, Value)], SerialError> {
        match self {
            Value::Obj(f) => Ok(f),
            _ => Err(missing("<object>")),
        }
    }

    /// Looks up `name` in an object value.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] when `self` is not an object or lacks the
    /// field.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, SerialError> {
        self.obj()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| missing(name))
    }

    /// An integer field of an object value.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] when the field is absent or not a number.
    pub fn u64_field(&self, name: &str) -> Result<u64, SerialError> {
        match self.field(name)? {
            Value::Num(n) => Ok(*n),
            _ => Err(missing(name)),
        }
    }

    /// A string field of an object value.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] when the field is absent or not a string.
    pub fn str_field(&self, name: &str) -> Result<String, SerialError> {
        match self.field(name)? {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(missing(name)),
        }
    }

    /// An array field of an object value.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] when the field is absent or not an array.
    pub fn arr_field<'a>(&'a self, name: &str) -> Result<&'a [Value], SerialError> {
        match self.field(name)? {
            Value::Arr(items) => Ok(items),
            _ => Err(missing(name)),
        }
    }

    /// Renders the value back to JSON text (round-trips through
    /// [`parse_value`]).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Num(n) => out.push_str(&n.to_string()),
            Value::Str(s) => esc(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    esc(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn arr4_field(&self, name: &str) -> Result<[u64; 4], SerialError> {
        let Value::Arr(items) = self.field(name)? else {
            return Err(missing(name));
        };
        if items.len() != 4 {
            return Err(missing(name));
        }
        let mut out = [0u64; 4];
        for (slot, item) in out.iter_mut().zip(items) {
            match item {
                Value::Num(n) => *slot = *n,
                _ => return Err(missing(name)),
            }
        }
        Ok(out)
    }
}

fn cache_stats_from(v: &Value) -> Result<CacheStats, SerialError> {
    Ok(CacheStats {
        demand_hits: v.u64_field("demand_hits")?,
        demand_misses: v.u64_field("demand_misses")?,
        prefetch_hits: v.u64_field("prefetch_hits")?,
        prefetch_misses: v.u64_field("prefetch_misses")?,
        prefetch_fills: v.u64_field("prefetch_fills")?,
        prefetch_useful: v.u64_field("prefetch_useful")?,
        prefetch_useless: v.u64_field("prefetch_useless")?,
        writebacks: v.u64_field("writebacks")?,
        mshr_stalls: v.u64_field("mshr_stalls")?,
    })
}

fn dram_stats_from(v: &Value) -> Result<DramStats, SerialError> {
    Ok(DramStats {
        reads: v.u64_field("reads")?,
        spec_reads: v.u64_field("spec_reads")?,
        writes: v.u64_field("writes")?,
        row_hits: v.u64_field("row_hits")?,
        row_conflicts: v.u64_field("row_conflicts")?,
        read_queue_full: v.u64_field("read_queue_full")?,
        spec_dropped: v.u64_field("spec_dropped")?,
        spec_consumed: v.u64_field("spec_consumed")?,
        spec_wasted: v.u64_field("spec_wasted")?,
    })
}

fn offchip_stats_from(v: &Value) -> Result<OffChipStats, SerialError> {
    Ok(OffChipStats {
        issued_now: v.u64_field("issued_now")?,
        tagged_delayed: v.u64_field("tagged_delayed")?,
        delayed_issued: v.u64_field("delayed_issued")?,
        predicted_onchip: v.u64_field("predicted_onchip")?,
        issued_outcome: v.arr4_field("issued_outcome")?,
        missed_offchip: v.u64_field("missed_offchip")?,
        correct_onchip: v.u64_field("correct_onchip")?,
    })
}

fn prefetch_stats_from(v: &Value) -> Result<PrefetchStats, SerialError> {
    Ok(PrefetchStats {
        candidates: v.u64_field("candidates")?,
        filtered: v.u64_field("filtered")?,
        dropped: v.u64_field("dropped")?,
        issued: v.u64_field("issued")?,
        filled_by_level: v.arr4_field("filled_by_level")?,
        useful_by_level: v.arr4_field("useful_by_level")?,
        useless_by_level: v.arr4_field("useless_by_level")?,
    })
}

fn core_stats_from(v: &Value) -> Result<CoreStats, SerialError> {
    Ok(CoreStats {
        instructions: v.u64_field("instructions")?,
        cycles: v.u64_field("cycles")?,
        loads: v.u64_field("loads")?,
        stores: v.u64_field("stores")?,
        branches: v.u64_field("branches")?,
        mispredicts: v.u64_field("mispredicts")?,
        dtlb_misses: v.u64_field("dtlb_misses")?,
        stlb_misses: v.u64_field("stlb_misses")?,
        store_forwards: v.u64_field("store_forwards")?,
    })
}

fn victim_stats_from(v: &Value) -> Result<VictimStats, SerialError> {
    Ok(VictimStats {
        hits: v.u64_field("hits")?,
        misses: v.u64_field("misses")?,
        insertions: v.u64_field("insertions")?,
    })
}

fn core_report_from(v: &Value) -> Result<CoreReport, SerialError> {
    Ok(CoreReport {
        workload: v.str_field("workload")?,
        core: core_stats_from(v.field("core")?)?,
        l1d: cache_stats_from(v.field("l1d")?)?,
        l2: cache_stats_from(v.field("l2")?)?,
        offchip: offchip_stats_from(v.field("offchip")?)?,
        l1_prefetch: prefetch_stats_from(v.field("l1_prefetch")?)?,
        l2_prefetch: prefetch_stats_from(v.field("l2_prefetch")?)?,
    })
}

/// Decodes a report from the on-disk cache format.
///
/// # Errors
///
/// Returns [`SerialError`] when the input is not well-formed JSON or lacks
/// a required field (e.g. a cache file written by an incompatible
/// version).
pub fn report_from_json(text: &str) -> Result<SimReport, SerialError> {
    report_from_value(&parse_value(text)?)
}

/// Decodes a report from an already-parsed [`Value`] (e.g. one embedded
/// in a `tlp-serve` result frame).
///
/// # Errors
///
/// Returns [`SerialError`] when the value lacks a required field.
pub fn report_from_value(root: &Value) -> Result<SimReport, SerialError> {
    let Value::Arr(core_values) = root.field("cores")? else {
        return Err(missing("cores"));
    };
    let cores = core_values
        .iter()
        .map(core_report_from)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SimReport {
        cores,
        llc: cache_stats_from(root.field("llc")?)?,
        dram: dram_stats_from(root.field("dram")?)?,
        victim: victim_stats_from(root.field("victim")?)?,
        total_cycles: root.u64_field("total_cycles")?,
    })
}

// ---------------------------------------------------------------------------
// Timeline artifacts
// ---------------------------------------------------------------------------

use tlp_timeline::{Counters, JourneyRecord, Timeline, WindowSample};

fn counters_value(c: &Counters) -> Value {
    Value::Obj(vec![
        ("instructions".into(), Value::Num(c.instructions)),
        ("l1d_misses".into(), Value::Num(c.l1d_misses)),
        ("l2_misses".into(), Value::Num(c.l2_misses)),
        ("llc_misses".into(), Value::Num(c.llc_misses)),
        ("pf_issued".into(), Value::Num(c.pf_issued)),
        ("pf_useful".into(), Value::Num(c.pf_useful)),
        ("pf_useless".into(), Value::Num(c.pf_useless)),
        ("pf_filtered".into(), Value::Num(c.pf_filtered)),
        ("offchip_issued".into(), Value::Num(c.offchip_issued)),
        ("offchip_accurate".into(), Value::Num(c.offchip_accurate)),
        ("offchip_missed".into(), Value::Num(c.offchip_missed)),
        (
            "offchip_predicted_onchip".into(),
            Value::Num(c.offchip_predicted_onchip),
        ),
        (
            "offchip_correct_onchip".into(),
            Value::Num(c.offchip_correct_onchip),
        ),
        ("dram_reads".into(), Value::Num(c.dram_reads)),
        ("dram_writes".into(), Value::Num(c.dram_writes)),
        ("dram_row_hits".into(), Value::Num(c.dram_row_hits)),
        (
            "dram_row_conflicts".into(),
            Value::Num(c.dram_row_conflicts),
        ),
    ])
}

fn counters_from(v: &Value) -> Result<Counters, SerialError> {
    Ok(Counters {
        instructions: v.u64_field("instructions")?,
        l1d_misses: v.u64_field("l1d_misses")?,
        l2_misses: v.u64_field("l2_misses")?,
        llc_misses: v.u64_field("llc_misses")?,
        pf_issued: v.u64_field("pf_issued")?,
        pf_useful: v.u64_field("pf_useful")?,
        pf_useless: v.u64_field("pf_useless")?,
        pf_filtered: v.u64_field("pf_filtered")?,
        offchip_issued: v.u64_field("offchip_issued")?,
        offchip_accurate: v.u64_field("offchip_accurate")?,
        offchip_missed: v.u64_field("offchip_missed")?,
        offchip_predicted_onchip: v.u64_field("offchip_predicted_onchip")?,
        offchip_correct_onchip: v.u64_field("offchip_correct_onchip")?,
        dram_reads: v.u64_field("dram_reads")?,
        dram_writes: v.u64_field("dram_writes")?,
        dram_row_hits: v.u64_field("dram_row_hits")?,
        dram_row_conflicts: v.u64_field("dram_row_conflicts")?,
    })
}

fn window_value(w: &WindowSample) -> Value {
    Value::Obj(vec![
        ("start_cycle".into(), Value::Num(w.start_cycle)),
        ("end_cycle".into(), Value::Num(w.end_cycle)),
        ("counters".into(), counters_value(&w.counters)),
        ("rob_occupancy".into(), Value::Num(w.rob_occupancy)),
        ("mshr_occupancy".into(), Value::Num(w.mshr_occupancy)),
    ])
}

fn window_from(v: &Value) -> Result<WindowSample, SerialError> {
    Ok(WindowSample {
        start_cycle: v.u64_field("start_cycle")?,
        end_cycle: v.u64_field("end_cycle")?,
        counters: counters_from(v.field("counters")?)?,
        rob_occupancy: v.u64_field("rob_occupancy")?,
        mshr_occupancy: v.u64_field("mshr_occupancy")?,
    })
}

fn journey_value(j: &JourneyRecord) -> Value {
    Value::Obj(vec![
        ("core".into(), Value::Num(j.core)),
        ("ordinal".into(), Value::Num(j.ordinal)),
        ("pc".into(), Value::Num(j.pc)),
        ("vaddr".into(), Value::Num(j.vaddr)),
        ("dispatch".into(), Value::Num(j.dispatch)),
        ("l1_at".into(), Value::Num(j.l1_at)),
        ("l2_at".into(), Value::Num(j.l2_at)),
        ("dram_queue_at".into(), Value::Num(j.dram_queue_at)),
        ("bank_at".into(), Value::Num(j.bank_at)),
        ("fill_at".into(), Value::Num(j.fill_at)),
        ("offchip_decision".into(), Value::Num(j.offchip_decision)),
        ("offchip_valid".into(), Value::Num(j.offchip_valid)),
        ("filter_seen".into(), Value::Num(j.filter_seen)),
        ("served_level".into(), Value::Num(j.served_level)),
    ])
}

fn journey_from(v: &Value) -> Result<JourneyRecord, SerialError> {
    Ok(JourneyRecord {
        core: v.u64_field("core")?,
        ordinal: v.u64_field("ordinal")?,
        pc: v.u64_field("pc")?,
        vaddr: v.u64_field("vaddr")?,
        dispatch: v.u64_field("dispatch")?,
        l1_at: v.u64_field("l1_at")?,
        l2_at: v.u64_field("l2_at")?,
        dram_queue_at: v.u64_field("dram_queue_at")?,
        bank_at: v.u64_field("bank_at")?,
        fill_at: v.u64_field("fill_at")?,
        offchip_decision: v.u64_field("offchip_decision")?,
        offchip_valid: v.u64_field("offchip_valid")?,
        filter_seen: v.u64_field("filter_seen")?,
        served_level: v.u64_field("served_level")?,
    })
}

/// Encodes a timeline as a [`Value`] (for embedding in harness artifacts
/// and `tlp-serve` frames).
#[must_use]
pub fn timeline_value(t: &Timeline) -> Value {
    Value::Obj(vec![
        ("window_cycles".into(), Value::Num(t.window_cycles)),
        ("journey_every".into(), Value::Num(t.journey_every)),
        ("start_cycle".into(), Value::Num(t.start_cycle)),
        ("end_cycle".into(), Value::Num(t.end_cycle)),
        ("windows_dropped".into(), Value::Num(t.windows_dropped)),
        ("journeys_dropped".into(), Value::Num(t.journeys_dropped)),
        (
            "windows".into(),
            Value::Arr(t.windows.iter().map(window_value).collect()),
        ),
        (
            "journeys".into(),
            Value::Arr(t.journeys.iter().map(journey_value).collect()),
        ),
    ])
}

/// Encodes a timeline as JSON (the on-disk blob-cache format).
#[must_use]
pub fn timeline_to_json(t: &Timeline) -> String {
    timeline_value(t).render()
}

/// Decodes a timeline from an already-parsed [`Value`].
///
/// # Errors
///
/// Returns [`SerialError`] when the value lacks a required field.
pub fn timeline_from_value(root: &Value) -> Result<Timeline, SerialError> {
    let windows = root
        .arr_field("windows")?
        .iter()
        .map(window_from)
        .collect::<Result<Vec<_>, _>>()?;
    let journeys = root
        .arr_field("journeys")?
        .iter()
        .map(journey_from)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Timeline {
        window_cycles: root.u64_field("window_cycles")?,
        journey_every: root.u64_field("journey_every")?,
        start_cycle: root.u64_field("start_cycle")?,
        end_cycle: root.u64_field("end_cycle")?,
        windows,
        journeys,
        windows_dropped: root.u64_field("windows_dropped")?,
        journeys_dropped: root.u64_field("journeys_dropped")?,
    })
}

/// Decodes a timeline from its JSON blob-cache format.
///
/// # Errors
///
/// Returns [`SerialError`] on malformed input (e.g. a truncated blob).
pub fn timeline_from_json(text: &str) -> Result<Timeline, SerialError> {
    timeline_from_value(&parse_value(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_report() -> SimReport {
        let mut r = SimReport {
            total_cycles: u64::MAX,
            ..SimReport::default()
        };
        r.dram.reads = 123_456_789;
        r.victim.hits = 7;
        let mut c = CoreReport {
            workload: "spec.mcf_06 \"quoted\"\nline".to_owned(),
            ..CoreReport::default()
        };
        c.core.instructions = 1_000_000;
        c.core.cycles = 2_500_000;
        c.offchip.issued_outcome = [1, 2, 3, u64::MAX - 1];
        c.l1_prefetch.useful_by_level = [9, 8, 7, 6];
        c.l1d.demand_misses = 42;
        r.cores.push(c);
        r
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let r = busy_report();
        let json = report_to_json(&r);
        let back = report_from_json(&json).expect("decodes");
        assert_eq!(r, back);
    }

    #[test]
    fn roundtrip_of_default_and_multicore() {
        let r = SimReport::default();
        assert_eq!(r, report_from_json(&report_to_json(&r)).expect("decodes"));
        let mut multi = SimReport::default();
        for i in 0..4 {
            multi.cores.push(CoreReport {
                workload: format!("w{i}"),
                ..CoreReport::default()
            });
        }
        let back = report_from_json(&report_to_json(&multi)).expect("decodes");
        assert_eq!(multi, back);
        assert_eq!(back.cores.len(), 4);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(report_from_json("").is_err());
        assert!(report_from_json("{").is_err());
        assert!(report_from_json("{}").is_err());
        assert!(report_from_json("[1,2]").is_err());
        let good = report_to_json(&SimReport::default());
        assert!(report_from_json(&format!("{good}x")).is_err());
        // A truncated file (e.g. a crashed writer) must not decode.
        assert!(report_from_json(&good[..good.len() - 5]).is_err());
    }

    #[test]
    fn rejects_missing_fields() {
        let good = report_to_json(&busy_report());
        let bad = good.replace("\"total_cycles\"", "\"total_cyclez\"");
        let err = report_from_json(&bad).expect_err("must fail");
        assert!(err.to_string().contains("total_cycles"), "{err}");
    }

    #[test]
    fn timeline_roundtrip_preserves_every_field() {
        let t = Timeline {
            window_cycles: 10_000,
            journey_every: 64,
            start_cycle: 123,
            end_cycle: 98_765,
            windows: vec![
                WindowSample {
                    start_cycle: 123,
                    end_cycle: 10_123,
                    counters: Counters {
                        instructions: u64::MAX,
                        l1d_misses: 42,
                        offchip_missed: 7,
                        dram_row_conflicts: 9,
                        ..Counters::default()
                    },
                    rob_occupancy: 17,
                    mshr_occupancy: 3,
                },
                WindowSample::default(),
            ],
            journeys: vec![JourneyRecord {
                core: 1,
                ordinal: 128,
                pc: 0x400_1234,
                vaddr: 0xdead_beef,
                dispatch: 200,
                l1_at: 204,
                l2_at: 0,
                dram_queue_at: 250,
                bank_at: 260,
                fill_at: 400,
                offchip_decision: 2,
                offchip_valid: 1,
                filter_seen: 0,
                served_level: 3,
            }],
            windows_dropped: 5,
            journeys_dropped: 1,
        };
        let json = timeline_to_json(&t);
        let back = timeline_from_json(&json).expect("decodes");
        assert_eq!(t, back);
        // Empty artifact round-trips too.
        let empty = Timeline::default();
        let back = timeline_from_json(&timeline_to_json(&empty)).expect("decodes");
        assert_eq!(empty, back);
    }

    #[test]
    fn timeline_rejects_malformed_input() {
        assert!(timeline_from_json("").is_err());
        assert!(timeline_from_json("{}").is_err());
        let good = timeline_to_json(&Timeline::default());
        assert!(timeline_from_json(&good[..good.len() - 3]).is_err());
        // A report blob is not a timeline blob.
        let report = report_to_json(&SimReport::default());
        assert!(timeline_from_json(&report).is_err());
    }

    #[test]
    fn json_is_whitespace_tolerant() {
        let json = report_to_json(&busy_report());
        let spaced = json.replace(',', " ,\n ").replace(':', " : ");
        assert_eq!(
            report_from_json(&spaced).expect("decodes"),
            busy_report(),
            "pretty-printed cache files decode identically"
        );
    }
}
