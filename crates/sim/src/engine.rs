//! The simulation engine: wires cores, caches, TLBs, DRAM and the plugin
//! predictors together, and advances the whole system through time.
//!
//! Two interchangeable engine modes drive the same component logic:
//!
//! * [`EngineMode::Cycle`] — the reference implementation: every
//!   component ticks every base cycle.
//! * [`EngineMode::Event`] — discrete-event scheduling on the
//!   [`tlp_events`] component contract: each component (DRAM, the LLC,
//!   each core's L2/L1D, each core front-end, the speculative-request
//!   and DRAM-retry queues) reports a conservative wake-up time, the
//!   engine takes the minimum, and the clock jumps straight there.
//!   Cycles where every component is provably idle — the common case
//!   when the whole system stalls behind a DRAM access — are never
//!   executed. Same-cycle wake-ups coalesce into one full tick, so only
//!   the minimum matters and no event queue is materialized.
//!
//! The per-tick path is allocation-free in steady state: the engine owns
//! reusable scratch buffers ([`TickScratch`]) that are cleared — never
//! freed — each cycle, DRAM hands rejected requests back by value
//! instead of being handed clones, and cache/DRAM waiter vectors recycle
//! through per-component freelists.
//!
//! Both modes run the identical per-cycle logic in the identical
//! intra-cycle order (DRAM → retries → speculative queue → LLC → L2 →
//! L1D → core), so they produce **bit-identical** [`SimReport`]s; the
//! event engine only skips cycles that the cycle engine would have spent
//! doing nothing. `tests/determinism.rs` and the engine tests below pin
//! that equivalence.

use std::collections::VecDeque;

use tlp_events::Component;
use tlp_trace::TraceSource;

use crate::cache::{Cache, PrefetchEviction, TickOutput};
use crate::config::SystemConfig;
use crate::core::{Core, DispatchHooks, LoadIssue};
use crate::dram::Dram;
use crate::hooks::{
    DemandAccess, L1FilterCtx, L1PrefetchFilter, L1Prefetcher, L2Access, L2PrefetchCandidate,
    L2PrefetchFilter, L2Prefetcher, LoadCtx, NoL1Filter, NoL1Prefetcher, NoL2Filter,
    NoL2Prefetcher, NoOffChip, OffChipDecision, OffChipPredictor, OffChipTag, PrefetchCandidate,
};
use crate::request::{ReqKind, Request, NO_JOURNEY};
use crate::stats::{CoreReport, OffChipStats, PrefetchStats, SimReport};
use crate::types::{CoreId, Cycle, Level, LINE_SIZE};
use crate::vm::{Mmu, PageTable};
use tlp_timeline::{Counters as TimelineCounters, Recorder, Stage, Timeline, TimelineConfig};

/// How [`System::run`] advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Tick every component every base cycle (reference implementation).
    #[default]
    Cycle,
    /// Discrete-event scheduling: jump from one component wake-up to the
    /// next, skipping cycles where the whole system is provably idle.
    /// Produces bit-identical reports to [`EngineMode::Cycle`].
    Event,
}

impl EngineMode {
    /// All modes, reference first.
    pub const ALL: [EngineMode; 2] = [EngineMode::Cycle, EngineMode::Event];

    /// The CLI/env spelling of the mode.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Cycle => "cycle",
            EngineMode::Event => "event",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cycle" => Ok(EngineMode::Cycle),
            "event" => Ok(EngineMode::Event),
            other => Err(format!(
                "unknown engine mode '{other}' (expected 'cycle' or 'event')"
            )),
        }
    }
}

/// Everything one core needs: its trace plus the plugin predictors.
pub struct CoreSetup {
    /// Instruction source.
    pub trace: Box<dyn TraceSource>,
    /// L1D prefetcher (IPCP, Berti, ...).
    pub l1_prefetcher: Box<dyn L1Prefetcher>,
    /// L2 prefetcher (SPP).
    pub l2_prefetcher: Box<dyn L2Prefetcher>,
    /// Off-chip predictor (Hermes, FLP, none).
    pub offchip: Box<dyn OffChipPredictor>,
    /// L1D prefetch filter (SLP, none).
    pub l1_filter: Box<dyn L1PrefetchFilter>,
    /// L2 prefetch filter (PPF, none).
    pub l2_filter: Box<dyn L2PrefetchFilter>,
}

impl CoreSetup {
    /// A baseline setup (no prefetchers, no predictors) around a trace.
    #[must_use]
    pub fn new(trace: Box<dyn TraceSource>) -> Self {
        Self {
            trace,
            l1_prefetcher: Box::new(NoL1Prefetcher),
            l2_prefetcher: Box::new(NoL2Prefetcher),
            offchip: Box::new(NoOffChip),
            l1_filter: Box::new(NoL1Filter),
            l2_filter: Box::new(NoL2Filter),
        }
    }

    /// Sets the L1D prefetcher.
    #[must_use]
    pub fn with_l1_prefetcher(mut self, p: Box<dyn L1Prefetcher>) -> Self {
        self.l1_prefetcher = p;
        self
    }

    /// Sets the L2 prefetcher.
    #[must_use]
    pub fn with_l2_prefetcher(mut self, p: Box<dyn L2Prefetcher>) -> Self {
        self.l2_prefetcher = p;
        self
    }

    /// Sets the off-chip predictor.
    #[must_use]
    pub fn with_offchip(mut self, p: Box<dyn OffChipPredictor>) -> Self {
        self.offchip = p;
        self
    }

    /// Sets the L1D prefetch filter.
    #[must_use]
    pub fn with_l1_filter(mut self, f: Box<dyn L1PrefetchFilter>) -> Self {
        self.l1_filter = f;
        self
    }

    /// Sets the L2 prefetch filter.
    #[must_use]
    pub fn with_l2_filter(mut self, f: Box<dyn L2PrefetchFilter>) -> Self {
        self.l2_filter = f;
        self
    }
}

struct CoreState {
    core: Core,
    l1d: Cache,
    l2: Cache,
    mmu: Mmu,
    trace: Box<dyn TraceSource>,
    workload: String,
    l1_pf: Box<dyn L1Prefetcher>,
    l2_pf: Box<dyn L2Prefetcher>,
    offchip: Box<dyn OffChipPredictor>,
    l1_filter: Box<dyn L1PrefetchFilter>,
    l2_filter: Box<dyn L2PrefetchFilter>,
    offchip_stats: OffChipStats,
    l1_pf_stats: PrefetchStats,
    l2_pf_stats: PrefetchStats,
    finish_cycle: Option<Cycle>,
    trace_exhausted: bool,
    pf_scratch: Vec<PrefetchCandidate>,
    l2_pf_scratch: Vec<L2PrefetchCandidate>,
}

/// Timeline encoding of an off-chip decision (the artifact is integer-only).
fn offchip_code(d: OffChipDecision) -> u64 {
    match d {
        OffChipDecision::NoIssue => 0,
        OffChipDecision::IssueOnL1dMiss => 1,
        OffChipDecision::IssueNow => 2,
    }
}

struct PredictHook<'a> {
    offchip: &'a mut dyn OffChipPredictor,
    stats: &'a mut OffChipStats,
    frozen: bool,
    core: CoreId,
}

impl DispatchHooks for PredictHook<'_> {
    fn predict_load(&mut self, pc: u64, vaddr: u64, cycle: Cycle) -> OffChipTag {
        let ctx = LoadCtx {
            core: self.core,
            pc,
            vaddr,
            cycle,
        };
        let tag = self.offchip.predict_load(&ctx);
        match tag.decision {
            OffChipDecision::IssueNow => {
                if !self.frozen {
                    self.stats.issued_now += 1;
                }
            }
            OffChipDecision::IssueOnL1dMiss => {
                if !self.frozen {
                    self.stats.tagged_delayed += 1;
                }
            }
            OffChipDecision::NoIssue => {
                if tag.valid && !self.frozen {
                    self.stats.predicted_onchip += 1;
                }
            }
        }
        tag
    }
}

/// Speculative requests waiting out their predictor latency, split by
/// origin so draining pops fronts and the event pre-pass is O(1).
///
/// The predecessor was one `VecDeque` mixing two constant latencies
/// (delayed-path specs become ready at `now + 1`, issue-now specs after
/// the predictor latency), so every drain scanned the whole queue and
/// `remove(i)` shifted the tail. Within each origin the ready times are
/// monotone (a constant added to a monotone `now`), so two FIFOs tagged
/// with a shared push sequence reproduce the old drain order exactly —
/// the scan drained ready entries in insertion order, and the minimum-
/// sequence ready entry is always at one of the two fronts.
#[derive(Default)]
struct SpecQueue {
    /// Issue-now specs (ready after the predictor latency).
    issued: VecDeque<(Cycle, u64, Request)>,
    /// Delayed-path specs (ready at `now + 1`).
    delayed: VecDeque<(Cycle, u64, Request)>,
    /// Global insertion counter merging the two FIFOs.
    seq: u64,
}

impl SpecQueue {
    fn push_issued(&mut self, ready: Cycle, req: Request) {
        debug_assert!(self.issued.back().is_none_or(|&(t, ..)| t <= ready));
        self.seq += 1;
        self.issued.push_back((ready, self.seq, req));
    }

    fn push_delayed(&mut self, ready: Cycle, req: Request) {
        debug_assert!(self.delayed.back().is_none_or(|&(t, ..)| t <= ready));
        self.seq += 1;
        self.delayed.push_back((ready, self.seq, req));
    }

    /// Pops the ready request the old single-queue scan would have
    /// drained next: earliest insertion among entries with `ready <= now`.
    fn pop_ready(&mut self, now: Cycle) -> Option<Request> {
        let i = self.issued.front().filter(|&&(t, ..)| t <= now);
        let d = self.delayed.front().filter(|&&(t, ..)| t <= now);
        let q = match (i, d) {
            (Some(&(_, a, _)), Some(&(_, b, _))) => {
                if a < b {
                    &mut self.issued
                } else {
                    &mut self.delayed
                }
            }
            (Some(_), None) => &mut self.issued,
            (None, Some(_)) => &mut self.delayed,
            (None, None) => return None,
        };
        q.pop_front().map(|(_, _, r)| r)
    }

    /// Earliest ready time across both queues — O(1), this is what the
    /// event engine's wake-up pre-pass and scheduling pass consult.
    fn next_ready(&self) -> Option<Cycle> {
        let i = self.issued.front().map(|&(t, ..)| t);
        let d = self.delayed.front().map(|&(t, ..)| t);
        match (i, d) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, d) => d,
        }
    }

    fn len(&self) -> usize {
        self.issued.len() + self.delayed.len()
    }

    fn is_empty(&self) -> bool {
        self.issued.is_empty() && self.delayed.is_empty()
    }
}

/// Engine-owned reusable buffers for the per-tick hot path. Each is
/// `std::mem::take`n for the duration of one use (so `&mut self` methods
/// can run while it is out), then cleared and put back — the capacity
/// survives across cycles, so a warmed-up steady-state tick performs
/// zero heap allocations.
#[derive(Default)]
struct TickScratch {
    /// DRAM completions being routed up the hierarchy.
    dram_done: Vec<Request>,
    /// Component tick output shared by the LLC and every L2/L1D tick.
    tick_out: TickOutput,
    /// Waiter-core dedup buffer for [`System::deliver_fill_waiters`].
    seen_cores: Vec<CoreId>,
    /// Loads issued by a core's scheduler this cycle.
    loads: Vec<LoadIssue>,
}

/// The full simulated system.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<CoreState>,
    llc: Cache,
    /// Optional LLC victim cache (disabled in the paper's Table III).
    victim: Option<crate::victim::VictimCache>,
    dram: Dram,
    pt: PageTable,
    cycle: Cycle,
    next_id: u64,
    /// Speculative requests waiting out the predictor latency.
    spec_pending: SpecQueue,
    /// DRAM-rejected reads to retry.
    dram_retry: VecDeque<Request>,
    /// DRAM-rejected writebacks to retry.
    wb_retry: VecDeque<(u64, CoreId)>,
    last_retire: Cycle,
    measuring: bool,
    mode: EngineMode,
    /// Reusable per-tick buffers (cleared every cycle, never freed).
    scratch: TickScratch,
    /// Ticks actually executed (== elapsed cycles in cycle mode; the gap
    /// to `cycle` is the event engine's skipped-idle-cycle win).
    ticks_executed: u64,
    /// Write-only instrumentation handles (a zero-sized no-op without
    /// the `obs` feature).
    obs: crate::obs::EngineObs,
    /// Simulated-time telemetry recorder, armed by
    /// [`System::enable_timeline`]. Boxed so the common disabled case
    /// costs one pointer; all recorder storage is preallocated, so the
    /// enabled steady-state tick still never allocates.
    timeline: Option<Box<Recorder>>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system: one [`CoreSetup`] per configured core.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `setups.len()` differs
    /// from `cfg.cores`.
    #[must_use]
    pub fn new(cfg: SystemConfig, setups: Vec<CoreSetup>) -> Self {
        cfg.validate().expect("invalid system configuration");
        assert_eq!(setups.len(), cfg.cores, "one CoreSetup per core required");
        let cores = setups
            .into_iter()
            .enumerate()
            .map(|(i, s)| CoreState {
                core: Core::new(cfg.core),
                l1d: Cache::new(format!("cpu{i}.L1D"), Level::L1d, cfg.l1d),
                l2: Cache::new(format!("cpu{i}.L2C"), Level::L2, cfg.l2),
                mmu: Mmu::new(cfg.dtlb, cfg.stlb, cfg.core.page_walk_latency),
                workload: s.trace.name().to_owned(),
                trace: s.trace,
                l1_pf: s.l1_prefetcher,
                l2_pf: s.l2_prefetcher,
                offchip: s.offchip,
                l1_filter: s.l1_filter,
                l2_filter: s.l2_filter,
                offchip_stats: OffChipStats::default(),
                l1_pf_stats: PrefetchStats::default(),
                l2_pf_stats: PrefetchStats::default(),
                finish_cycle: None,
                trace_exhausted: false,
                pf_scratch: Vec::with_capacity(16),
                l2_pf_scratch: Vec::with_capacity(16),
            })
            .collect();
        Self {
            llc: Cache::with_replacement(
                "LLC",
                Level::Llc,
                cfg.llc,
                cfg.llc_repl.build(cfg.llc.sets, cfg.llc.ways),
            ),
            victim: (cfg.victim_cache_entries > 0)
                .then(|| crate::victim::VictimCache::new(cfg.victim_cache_entries)),
            dram: Dram::new(cfg.dram),
            pt: PageTable::new(cfg.cores),
            cores,
            cfg,
            cycle: 0,
            next_id: 0,
            spec_pending: SpecQueue::default(),
            dram_retry: VecDeque::new(),
            wb_retry: VecDeque::new(),
            last_retire: 0,
            measuring: false,
            mode: EngineMode::default(),
            scratch: TickScratch::default(),
            ticks_executed: 0,
            obs: crate::obs::EngineObs::new(),
            timeline: None,
        }
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Selects how [`System::run`] advances time. Both modes produce
    /// bit-identical reports; [`EngineMode::Event`] is faster whenever
    /// the system spends cycles fully stalled (memory-bound workloads).
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// Builder-style [`System::set_engine_mode`].
    #[must_use]
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.set_engine_mode(mode);
        self
    }

    /// The active engine mode.
    #[must_use]
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// Ticks actually executed so far. In cycle mode this equals
    /// [`System::cycle`]; in event mode the difference counts the idle
    /// cycles the scheduler skipped.
    #[must_use]
    pub fn ticks_executed(&self) -> u64 {
        self.ticks_executed
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Arms a simulated-time timeline capture. [`System::run`] re-arms the
    /// recorder at the warmup/measurement boundary so the artifact covers
    /// only the measured window; a system driven directly through
    /// [`System::tick`] records from the current cycle. Timeline data is
    /// derived from simulated state only and never feeds back into the
    /// simulation, so enabling it cannot perturb the [`SimReport`].
    pub fn enable_timeline(&mut self, cfg: TimelineConfig) {
        let mut rec = Box::new(Recorder::new(cfg, self.cores.len()));
        let (snap, _, _) = self.timeline_observe();
        rec.restart(self.cycle, snap);
        self.timeline = Some(rec);
    }

    /// Finishes an armed capture at the current cycle and returns the
    /// artifact (or `None` if no capture was armed).
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        let (snap, rob, mshr) = self.timeline_observe();
        let now = self.cycle;
        self.timeline
            .take()
            .map(|mut rec| rec.finish_run(now, snap, rob, mshr))
    }

    /// Snapshot of the monotone counters the timeline windows are deltas
    /// of, plus the two occupancy gauges. A pure read of stats the hot
    /// loop maintains anyway; only consulted at window boundaries.
    fn timeline_observe(&self) -> (TimelineCounters, u64, u64) {
        let mut c = TimelineCounters::default();
        let mut rob = 0u64;
        let mut mshr = 0u64;
        for cs in &self.cores {
            c.instructions += cs.core.retired();
            c.l1d_misses += cs.l1d.stats.demand_misses;
            c.l2_misses += cs.l2.stats.demand_misses;
            for pf in [&cs.l1_pf_stats, &cs.l2_pf_stats] {
                c.pf_issued += pf.issued;
                c.pf_useful += pf.useful_by_level.iter().sum::<u64>();
                c.pf_useless += pf.useless_by_level.iter().sum::<u64>();
                c.pf_filtered += pf.filtered;
            }
            let oc = &cs.offchip_stats;
            c.offchip_issued += oc.issued_now + oc.delayed_issued;
            c.offchip_accurate += oc.issued_outcome[Level::Dram.index()];
            c.offchip_missed += oc.missed_offchip;
            c.offchip_predicted_onchip += oc.predicted_onchip;
            c.offchip_correct_onchip += oc.correct_onchip;
            rob += cs.core.rob_occupancy() as u64;
            mshr += (cs.l1d.mshrs_in_use() + cs.l2.mshrs_in_use()) as u64;
        }
        c.llc_misses = self.llc.stats.demand_misses;
        let d = &self.dram.stats;
        c.dram_reads = d.reads + d.spec_reads;
        c.dram_writes = d.writes;
        c.dram_row_hits = d.row_hits;
        c.dram_row_conflicts = d.row_conflicts;
        mshr += self.llc.mshrs_in_use() as u64;
        (c, rob, mshr)
    }

    /// Forward a journey stage stamp to the recorder, if armed. The id
    /// check keeps the unsampled (overwhelmingly common) case to one
    /// compare.
    #[inline]
    fn stamp_journey(&mut self, id: u32, stage: Stage, at: Cycle) {
        if id != NO_JOURNEY {
            if let Some(tl) = &mut self.timeline {
                tl.stamp(id, stage, at);
            }
        }
    }

    /// Runs `warmup` instructions per core with counters discarded, then
    /// `measure` instructions per core with counters live, and returns the
    /// report. Finite traces may end early; the report covers what ran.
    ///
    /// # Panics
    ///
    /// Panics if the system deadlocks (no instruction retires for a very
    /// long time) — this is a simulator bug, not a workload property.
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimReport {
        // Warmup.
        let warm_target: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.core.retired() + warmup)
            .collect();
        while !self
            .cores
            .iter()
            .enumerate()
            .all(|(i, c)| c.core.retired() >= warm_target[i] || c.trace_exhausted)
        {
            self.step();
            self.check_watchdog();
            if self.all_done() {
                break;
            }
        }
        // Measurement.
        self.reset_stats();
        self.measuring = true;
        let start = self.cycle;
        // Re-arm the timeline at the measurement boundary: warmup-era
        // windows and in-flight journeys are discarded, ordinals restart.
        if self.timeline.is_some() {
            let (snap, _, _) = self.timeline_observe();
            if let Some(tl) = &mut self.timeline {
                tl.restart(start, snap);
            }
        }
        let targets: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.core.retired() + measure)
            .collect();
        let mut first = true;
        loop {
            if first {
                // Always single-step the first measured cycle: a core that
                // drained during warmup has its finish condition sampled
                // at `start + 1` by the cycle engine (the condition is
                // checked after each tick, and the cycle engine ticks
                // every cycle), and the event engine must record the same
                // finish cycle even though no component has work then.
                self.tick();
                first = false;
            } else {
                self.step();
            }
            let now = self.cycle;
            for (i, c) in self.cores.iter_mut().enumerate() {
                let drained = c.trace_exhausted
                    && c.core.pending() == 0
                    && c.l1d.pending() == 0
                    && c.l2.pending() == 0;
                if c.finish_cycle.is_none() && (c.core.retired() >= targets[i] || drained) {
                    c.finish_cycle = Some(now);
                    c.core.stats.cycles = now - start;
                    c.core.freeze_stats();
                }
            }
            if self.cores.iter().all(|c| c.finish_cycle.is_some()) {
                break;
            }
            self.check_watchdog();
            if self.all_done() {
                break;
            }
        }
        self.finalize_report(start)
    }

    fn all_done(&self) -> bool {
        self.cores.iter().all(|c| {
            c.trace_exhausted
                && c.core.pending() == 0
                && c.l1d.pending() == 0
                && c.l2.pending() == 0
        }) && self.llc.pending() == 0
            && self.dram.pending() == 0
            && self.spec_pending.is_empty()
    }

    /// Forward-progress watchdog. A genuine livelock is a simulator bug,
    /// not a workload property, so the panic carries a full diagnosis:
    /// the stalled core and its oldest in-flight instruction, plus the
    /// queue/MSHR occupancy of every level of the hierarchy.
    fn check_watchdog(&self) {
        const WATCHDOG_CYCLES: Cycle = 1_000_000;
        if self.cycle - self.last_retire < WATCHDOG_CYCLES {
            return;
        }
        // The stalled core: the one whose oldest in-flight instruction
        // has been waiting longest (ties to the lowest core id).
        let stalled = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.core.pending() > 0)
            .min_by_key(|(i, c)| (c.core.oldest_dispatch_cycle().unwrap_or(Cycle::MAX), *i))
            .map_or(0, |(i, _)| i);
        let mut levels = String::new();
        for (i, c) in self.cores.iter().enumerate() {
            levels.push_str(&format!(
                "  core{i} ({}): rob+stores {}, retired {}\n    \
                 L1D queues d/p {}/{} mshrs {}; L2 queues d/p {}/{} mshrs {}\n",
                c.workload,
                c.core.pending(),
                c.core.retired(),
                c.l1d.demand_queue_len(),
                c.l1d.prefetch_queue_len(),
                c.l1d.mshrs_in_use(),
                c.l2.demand_queue_len(),
                c.l2.prefetch_queue_len(),
                c.l2.mshrs_in_use(),
            ));
        }
        levels.push_str(&format!(
            "  LLC queues d/p {}/{} mshrs {}\n  \
             DRAM read-q {} write-q {} in-flight {}\n  \
             retry queues read/wb {}/{}, speculative pending {}",
            self.llc.demand_queue_len(),
            self.llc.prefetch_queue_len(),
            self.llc.mshrs_in_use(),
            self.dram.read_queue_len(),
            self.dram.write_queue_len(),
            self.dram.in_flight_len(),
            self.dram_retry.len(),
            self.wb_retry.len(),
            self.spec_pending.len(),
        ));
        // A metrics snapshot makes the stall report self-contained: tick
        // counts show which components were still being driven, and with
        // the `obs` feature the full `sim_*` registry rides along.
        let mut metrics = format!(
            "  ticks executed {} of {} cycles ({} skipped)",
            self.ticks_executed,
            self.cycle,
            self.cycle - self.ticks_executed,
        );
        let rendered = crate::obs::EngineObs::render_snapshot();
        if !rendered.is_empty() {
            metrics.push_str("\n  obs registry:\n");
            for line in rendered.lines().filter(|l| l.starts_with("sim_")) {
                metrics.push_str(&format!("    {line}\n"));
            }
        }
        panic!(
            "no instruction retired for 1M cycles at cycle {} ({} engine): deadlock\n\
             stalled core{stalled}: {}\n\
             per-level occupancy:\n{levels}\n\
             engine metrics:\n{metrics}",
            self.cycle,
            self.mode,
            self.cores[stalled]
                .core
                .oldest_inflight()
                .unwrap_or_else(|| "no in-flight instruction (front-end starved)".into()),
        );
    }

    fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.core.reset_stats();
            c.l1d.stats = Default::default();
            c.l2.stats = Default::default();
            c.offchip_stats = Default::default();
            c.l1_pf_stats = Default::default();
            c.l2_pf_stats = Default::default();
            c.finish_cycle = None;
            // Forget warmup-era prefetch provenance: outcomes must only be
            // attributed to prefetches filled inside the measured window,
            // otherwise useless counts can exceed issued counts.
            c.l1d.clear_prefetch_marks();
            c.l2.clear_prefetch_marks();
        }
        self.llc.clear_prefetch_marks();
        self.llc.stats = Default::default();
        self.dram.stats = Default::default();
        if let Some(vc) = &mut self.victim {
            vc.stats = Default::default();
        }
    }

    fn finalize_report(&mut self, start: Cycle) -> SimReport {
        self.obs.on_run_complete(self.cycle, self.ticks_executed);
        // Unused prefetched lines still resident count as useless.
        let evs: Vec<PrefetchEviction> = self
            .cores
            .iter_mut()
            .flat_map(|c| {
                let mut v = c.l1d.drain_prefetch_residue();
                v.extend(c.l2.drain_prefetch_residue());
                v
            })
            .chain(self.llc.drain_prefetch_residue())
            .collect();
        for ev in evs {
            self.attribute_prefetch_outcome(&ev);
        }
        self.dram.drain_ddrp_residue();
        let cores = self
            .cores
            .iter()
            .map(|c| CoreReport {
                workload: c.workload.clone(),
                core: c.core.stats.clone(),
                l1d: c.l1d.stats.clone(),
                l2: c.l2.stats.clone(),
                offchip: c.offchip_stats.clone(),
                l1_prefetch: c.l1_pf_stats.clone(),
                l2_prefetch: c.l2_pf_stats.clone(),
            })
            .collect();
        SimReport {
            cores,
            llc: self.llc.stats.clone(),
            dram: self.dram.stats.clone(),
            victim: self
                .victim
                .as_ref()
                .map(|vc| vc.stats.clone())
                .unwrap_or_default(),
            total_cycles: self.cycle - start,
        }
    }

    /// Advances the system: one cycle in [`EngineMode::Cycle`], straight
    /// to the next scheduled component wake-up in [`EngineMode::Event`].
    fn step(&mut self) {
        if self.mode == EngineMode::Event {
            let wake = self.next_wake();
            debug_assert!(wake > self.cycle, "wake-ups must move time forward");
            self.cycle = wake - 1;
        }
        self.tick();
    }

    /// The earliest cycle at which any component may change state: every
    /// component reports a conservative wake-up and the engine folds the
    /// minimum directly. (An earlier version scheduled each wake-up into
    /// an event queue and popped it — but same-cycle wake-ups coalesce
    /// into one full tick anyway, so the popped minimum was the only
    /// thing ever consumed; the running min is exactly equivalent and
    /// skips the per-tick queue rebuild.) Components are consulted
    /// cheapest-first, and any wake-up due at the very next cycle returns
    /// immediately — during busy phases the expensive per-core scans
    /// never run, so event mode falls through to plain stepping instead
    /// of paying scheduling overhead every tick. Falls back to the next
    /// cycle when nothing at all is scheduled but the run is not over (a
    /// simulator bug: single-stepping lets the watchdog produce its
    /// diagnosis).
    fn next_wake(&mut self) -> Cycle {
        let now = self.cycle;
        let soonest = now + 1;
        if self.work_due_next_cycle(now) {
            return soonest;
        }
        let mut wake = Cycle::MAX;
        let mut scheduled = 0usize;
        if let Some(t) = self.dram.next_event(now) {
            if t <= soonest {
                return soonest;
            }
            wake = wake.min(t);
            scheduled += 1;
        }
        if let Some(t) = self.spec_pending.next_ready() {
            if t <= soonest {
                return soonest;
            }
            wake = wake.min(t);
            scheduled += 1;
        }
        if let Some(t) = self.llc.next_ready() {
            if t <= soonest {
                return soonest;
            }
            wake = wake.min(t);
            scheduled += 1;
        }
        for c in &self.cores {
            if let Some(t) = c.l2.next_ready() {
                if t <= soonest {
                    return soonest;
                }
                wake = wake.min(t);
                scheduled += 1;
            }
            if let Some(t) = c.l1d.next_ready() {
                if t <= soonest {
                    return soonest;
                }
                wake = wake.min(t);
                scheduled += 1;
            }
        }
        // The core front-ends last: their wake-up needs an ROB walk.
        {
            let _t = self.obs.rob_walk_span();
            for c in &self.cores {
                if let Some(t) = c.core.next_wake(now, c.trace_exhausted) {
                    if t <= soonest {
                        return soonest;
                    }
                    wake = wake.min(t);
                    scheduled += 1;
                }
            }
        }
        // The gauge keeps its historical meaning: how many components had
        // a scheduled wake-up when the full pass ran.
        self.obs.event_queue_depth(scheduled);
        if wake == Cycle::MAX {
            soonest
        } else {
            wake
        }
    }

    /// O(1) pre-pass of [`System::next_wake`]: true when some component
    /// is certain to have work on the very next cycle, in which case the
    /// scheduling pass (queue rebuild + per-core ROB walks) is pointless.
    /// On busy cycles — the overwhelming majority of executed ticks on
    /// compute-bound phases — this keeps event mode within a few percent
    /// of cycle mode's cost.
    fn work_due_next_cycle(&self, now: Cycle) -> bool {
        let soonest = now + 1;
        // Retries re-attempt the DRAM queues every cycle, and queued DRAM
        // transactions contend for the command bus every cycle.
        if !self.dram_retry.is_empty() || !self.wb_retry.is_empty() {
            return true;
        }
        if self.dram.read_queue_len() > 0 || self.dram.write_queue_len() > 0 {
            return true;
        }
        for c in &self.cores {
            if c.core.wants_next_cycle(now, c.trace_exhausted)
                || c.l1d.next_ready().is_some_and(|t| t <= soonest)
                || c.l2.next_ready().is_some_and(|t| t <= soonest)
            {
                return true;
            }
        }
        self.llc.next_ready().is_some_and(|t| t <= soonest)
            || self.spec_pending.next_ready().is_some_and(|t| t <= soonest)
    }

    /// Advances the system by one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.ticks_executed += 1;
        let now = self.cycle;
        // Timeline catch-up for window boundaries the event engine jumped
        // over: the skipped cycles were provably idle, so the counters at
        // those boundaries equal the counters right now — sampling them
        // here reproduces the cycle engine's zero windows bit-for-bit.
        if self
            .timeline
            .as_ref()
            .is_some_and(|tl| tl.window_due_before(now))
        {
            let (snap, rob, mshr) = self.timeline_observe();
            if let Some(tl) = &mut self.timeline {
                tl.sample_skipped(now, snap, rob, mshr);
            }
        }
        // 1. DRAM completions climb back up the hierarchy. The scratch
        // buffer is engine-owned: cleared after use, never freed, so the
        // steady-state tick performs no allocation here.
        let mut done = std::mem::take(&mut self.scratch.dram_done);
        self.dram.tick_into(now, &mut done);
        // Bank-service stamps for sampled reads scheduled this tick.
        while let Some((id, at)) = self.dram.pop_journey_mark() {
            if let Some(tl) = &mut self.timeline {
                tl.stamp(id, Stage::BankService, at);
            }
        }
        for req in &done {
            self.deliver_from_dram(req, now);
        }
        done.clear();
        self.scratch.dram_done = done;
        // 2. Retry DRAM-rejected traffic.
        self.drain_retries(now);
        // 3. Speculative requests whose predictor latency elapsed. The
        // queue keeps the two latency classes in separate FIFOs; popping
        // the minimum-sequence ready entry reproduces the old single
        // queue's in-place scan order exactly.
        while let Some(req) = self.spec_pending.pop_ready(now) {
            let _ = self.dram.push_speculative(req);
        }
        // 4. The cache hierarchy: LLC, then per-core L2 and L1D.
        {
            let _t = self.obs.cache_tick_span();
            self.tick_llc(now);
            for i in 0..self.cores.len() {
                self.tick_l2(i, now);
            }
            for i in 0..self.cores.len() {
                self.tick_l1d(i, now);
            }
        }
        // 5. The cores themselves.
        {
            let _t = self.obs.core_tick_span();
            for i in 0..self.cores.len() {
                self.tick_core(i, now);
            }
        }
        // A window boundary landing exactly on this cycle is sampled with
        // the post-tick counters — identical in both engine modes, since
        // both execute this tick in full.
        if self
            .timeline
            .as_ref()
            .is_some_and(|tl| tl.window_due_at(now))
        {
            let (snap, rob, mshr) = self.timeline_observe();
            if let Some(tl) = &mut self.timeline {
                tl.sample_at(now, snap, rob, mshr);
            }
        }
        self.obs.on_tick(self.cores.len() as u64);
    }

    fn drain_retries(&mut self, _now: Cycle) {
        for _ in 0..self.dram_retry.len() {
            let Some(req) = self.dram_retry.pop_front() else {
                break;
            };
            // `push_read` hands the request back on rejection, so the
            // retry loop moves it in and out without ever cloning.
            if let Err(req) = self.dram.push_read(req) {
                self.dram_retry.push_front(req);
                break;
            }
        }
        for _ in 0..self.wb_retry.len() {
            let Some((paddr, core)) = self.wb_retry.pop_front() else {
                break;
            };
            if !self.dram.push_write(paddr, core) {
                self.wb_retry.push_front((paddr, core));
                break;
            }
        }
    }

    /// Wakes each distinct core with a waiter on an LLC fill, preserving
    /// first-waiter order. The dedup scratch lives on the engine so the
    /// per-fill `seen` list costs no allocation; the waiters themselves
    /// are borrowed, and the caller recycles their Vec afterwards.
    fn deliver_fill_waiters(&mut self, waiters: &[Request], line: u64, served: Level, now: Cycle) {
        let mut seen = std::mem::take(&mut self.scratch.seen_cores);
        for w in waiters {
            if !seen.contains(&w.core) {
                seen.push(w.core);
            }
        }
        for &c in &seen {
            self.deliver_to_core(c, line, served, now);
        }
        seen.clear();
        self.scratch.seen_cores = seen;
    }

    fn tick_llc(&mut self, now: Cycle) {
        let mut out = std::mem::take(&mut self.scratch.tick_out);
        let _ = Component::tick(&mut self.llc, now, &mut out);
        for ev in out.pf_useful.drain(..) {
            self.attribute_prefetch_outcome(&ev);
        }
        for req in out.hits.drain(..) {
            self.deliver_to_core(req.core, req.line(), Level::Llc, now);
        }
        for req in out.forwards.drain(..) {
            // The victim cache (when configured) intercepts LLC misses:
            // a hit swaps the line back in without touching DRAM.
            if self
                .victim
                .as_mut()
                .is_some_and(|vc| vc.probe_remove(req.line()))
            {
                let line = req.line();
                let fill = self.llc.fill(line, Level::Llc, now);
                self.handle_llc_fill(
                    fill.writeback,
                    fill.evicted_prefetch,
                    fill.evicted_line,
                    req.core,
                    now,
                );
                self.deliver_fill_waiters(&fill.waiters, line, Level::Llc, now);
                self.llc.recycle_waiters(fill.waiters);
                continue;
            }
            self.forward_to_dram(req, now);
        }
        self.scratch.tick_out = out;
    }

    fn forward_to_dram(&mut self, req: Request, now: Cycle) {
        self.stamp_journey(req.journey, Stage::DramQueue, now);
        // Hermes semantics: a demand that reaches the LLC-miss path first
        // checks the DDRP buffer for a completed speculative fill.
        if req.kind.is_demand() && self.dram.take_ddrp(req.core, req.paddr) {
            let line = req.line();
            let fill = self.llc.fill(line, Level::Dram, now);
            self.handle_llc_fill(
                fill.writeback,
                fill.evicted_prefetch,
                fill.evicted_line,
                req.core,
                now,
            );
            self.deliver_fill_waiters(&fill.waiters, line, Level::Dram, now);
            self.llc.recycle_waiters(fill.waiters);
            return;
        }
        if let Err(req) = self.dram.push_read(req) {
            self.dram_retry.push_back(req);
        }
    }

    fn deliver_from_dram(&mut self, req: &Request, now: Cycle) {
        let line = req.line();
        let fill = self.llc.fill(line, Level::Dram, now);
        self.handle_llc_fill(
            fill.writeback,
            fill.evicted_prefetch,
            fill.evicted_line,
            req.core,
            now,
        );
        self.deliver_fill_waiters(&fill.waiters, line, Level::Dram, now);
        self.llc.recycle_waiters(fill.waiters);
    }

    fn handle_llc_fill(
        &mut self,
        writeback: Option<u64>,
        evicted: Option<PrefetchEviction>,
        evicted_line: Option<u64>,
        core: CoreId,
        _now: Cycle,
    ) {
        if let Some(paddr) = writeback {
            if !self.dram.push_write(paddr, core) {
                self.wb_retry.push_back((paddr, core));
            }
        }
        if let Some(line) = evicted_line {
            if let Some(vc) = &mut self.victim {
                vc.insert(line);
            }
        }
        if let Some(ev) = evicted {
            self.attribute_prefetch_outcome(&ev);
        }
    }

    /// Data for `line` is available at the LLC boundary for core `c`:
    /// resolve the L2 MSHR, then the L1 MSHR, then wake the core.
    fn deliver_to_core(&mut self, c: CoreId, line: u64, served: Level, now: Cycle) {
        let fill = self.cores[c].l2.fill(line, served, now);
        if let Some(paddr) = fill.writeback {
            self.writeback_from_l2(c, paddr);
        }
        if let Some(ev) = fill.evicted_prefetch {
            self.attribute_prefetch_outcome(&ev);
        }
        if fill.waiters.is_empty() {
            self.cores[c].l2.recycle_waiters(fill.waiters);
            return;
        }
        let any_demand = fill.waiters.iter().any(|w| w.kind.is_demand());
        let mut needs_l1 = false;
        for w in &fill.waiters {
            match w.kind {
                ReqKind::PrefetchL2 { .. } => {
                    self.finalize_l2_prefetch(c, w, any_demand);
                }
                _ => needs_l1 = true,
            }
        }
        self.cores[c].l2.recycle_waiters(fill.waiters);
        if needs_l1 {
            self.deliver_to_l1(c, line, served, now);
        }
    }

    /// Data for `line` is available at the L2 boundary: resolve the L1 MSHR
    /// and wake the core.
    fn deliver_to_l1(&mut self, c: CoreId, line: u64, served: Level, now: Cycle) {
        let fill = self.cores[c].l1d.fill(line, served, now);
        if let Some(paddr) = fill.writeback {
            self.writeback_from_l1(c, paddr);
        }
        if let Some(ev) = fill.evicted_prefetch {
            self.attribute_prefetch_outcome(&ev);
        }
        let any_demand = fill.waiters.iter().any(|w| w.kind.is_demand());
        for w in &fill.waiters {
            self.finalize_l1_waiter(c, w, any_demand, now);
        }
        self.cores[c].l1d.recycle_waiters(fill.waiters);
    }

    fn finalize_l1_waiter(&mut self, c: CoreId, w: &Request, any_demand: bool, now: Cycle) {
        let served = w.served_from.unwrap_or(Level::Dram);
        // Every L1 fill is visible to the prefetcher (Berti measures
        // demand-miss latency from these notifications).
        self.cores[c].l1_pf.on_fill(w.vaddr, now);
        match w.kind {
            ReqKind::Load => {
                self.complete_load(c, w, served, now);
            }
            ReqKind::Rfo => {} // dirty bit handled by the fill
            ReqKind::PrefetchL1 { .. } => {
                let frozen = self.cores[c].core.stats_frozen();
                if !frozen {
                    self.cores[c].l1_pf_stats.filled_by_level[served.index()] += 1;
                    if any_demand {
                        // Late prefetch: a demand merged into its MSHR.
                        self.cores[c].l1_pf_stats.useful_by_level[served.index()] += 1;
                    }
                }
                let cs = &mut self.cores[c];
                let (tpc, tva, tdec) =
                    w.pf_trigger
                        .unwrap_or((w.pc, w.vaddr, OffChipDecision::NoIssue));
                let ctx = L1FilterCtx {
                    core: c,
                    trigger_pc: tpc,
                    trigger_vaddr: tva,
                    pf_vaddr: w.vaddr,
                    pf_paddr: w.paddr,
                    trigger_tag: OffChipTag::from_decision(tdec),
                    cycle: now,
                };
                cs.l1_filter.train(&ctx, &w.filter, served);
            }
            _ => {}
        }
    }

    fn complete_load(&mut self, c: CoreId, w: &Request, served: Level, now: Cycle) {
        let Some(seq) = w.lq_seq else { return };
        let Some(done) = self.cores[c].core.complete_load(seq, now) else {
            return;
        };
        // Journey completion: data delivered to the core this cycle.
        if w.journey != NO_JOURNEY {
            if let Some(tl) = &mut self.timeline {
                if w.filter.valid {
                    tl.stamp_filter(w.journey);
                }
                tl.finish(w.journey, now, served.index() as u64);
            }
        }
        let frozen = self.cores[c].core.stats_frozen();
        let ctx = LoadCtx {
            core: c,
            pc: done.pc,
            vaddr: done.vaddr,
            cycle: now,
        };
        let cs = &mut self.cores[c];
        cs.offchip.train_load(&ctx, &done.offchip, served);
        if done.offchip.valid && !frozen {
            let issued = done.offchip.decision == OffChipDecision::IssueNow || done.spec_issued;
            if issued {
                cs.offchip_stats.record_outcome(served);
            }
            if !done.offchip.predicted_offchip() {
                if served == Level::Dram {
                    cs.offchip_stats.missed_offchip += 1;
                } else {
                    cs.offchip_stats.correct_onchip += 1;
                }
            }
        }
    }

    fn finalize_l2_prefetch(&mut self, c: CoreId, w: &Request, any_demand: bool) {
        if self.cores[c].core.stats_frozen() {
            return;
        }
        let served = w.served_from.unwrap_or(Level::Dram);
        self.cores[c].l2_pf_stats.filled_by_level[served.index()] += 1;
        if any_demand {
            self.cores[c].l2_pf_stats.useful_by_level[served.index()] += 1;
        }
    }

    fn attribute_prefetch_outcome(&mut self, ev: &PrefetchEviction) {
        let c = ev.core.min(self.cores.len() - 1);
        if !ev.origin_l1 {
            let cs = &mut self.cores[c];
            if ev.was_useful {
                cs.l2_filter.on_useful(ev.paddr);
            } else {
                cs.l2_filter.on_useless(ev.paddr);
            }
        }
        // No frozen-window gate here: prefetch marks are cleared at the
        // warmup/measurement boundary, so every outcome that resolves —
        // whether by eviction (possibly after this core froze, under a
        // co-runner's cache pressure) or by the end-of-run residue sweep —
        // belongs to a measurement-window prefetch. Gating on frozen made
        // attribution depend on eviction timing.
        let stats = if ev.origin_l1 {
            &mut self.cores[c].l1_pf_stats
        } else {
            &mut self.cores[c].l2_pf_stats
        };
        if ev.was_useful {
            stats.useful_by_level[ev.served.index()] += 1;
        } else {
            stats.useless_by_level[ev.served.index()] += 1;
        }
    }

    fn writeback_from_l1(&mut self, c: CoreId, paddr: u64) {
        let out = self.cores[c].l2.writeback_arrive(paddr);
        if let Some(ev) = out.evicted_prefetch {
            self.attribute_prefetch_outcome(&ev);
        }
        if let Some(p) = out.writeback {
            self.writeback_from_l2(c, p);
        }
    }

    fn writeback_from_l2(&mut self, c: CoreId, paddr: u64) {
        let out = self.llc.writeback_arrive(paddr);
        if let Some(ev) = out.evicted_prefetch {
            self.attribute_prefetch_outcome(&ev);
        }
        if let Some(line) = out.evicted_line {
            if let Some(vc) = &mut self.victim {
                vc.insert(line);
            }
        }
        if let Some(p) = out.writeback {
            if !self.dram.push_write(p, c) {
                self.wb_retry.push_back((p, c));
            }
        }
    }

    fn tick_l2(&mut self, i: usize, now: Cycle) {
        let mut out = std::mem::take(&mut self.scratch.tick_out);
        let _ = Component::tick(&mut self.cores[i].l2, now, &mut out);
        for paddr in out.demand_misses.drain(..) {
            self.cores[i].l2_filter.on_demand_miss(paddr);
        }
        for ev in out.pf_useful.drain(..) {
            self.attribute_prefetch_outcome(&ev);
        }
        for req in out.hits.drain(..) {
            self.stamp_journey(req.journey, Stage::L2Lookup, now);
            self.deliver_to_l1(req.core, req.line(), Level::L2, now);
        }
        for req in out.forwards.drain(..) {
            self.stamp_journey(req.journey, Stage::L2Lookup, now);
            self.llc.push_demand(req, now);
        }
        // SPP observes demand accesses and produces candidates; PPF filters.
        for (req, hit) in out.demand_accesses.drain(..) {
            // Covers loads that merged into an existing L2 MSHR (neither a
            // hit nor a forward); idempotent for the other two paths.
            self.stamp_journey(req.journey, Stage::L2Lookup, now);
            let acc = L2Access {
                core: i,
                pc: req.pc,
                paddr: req.paddr,
                hit,
                cycle: now,
            };
            let cs = &mut self.cores[i];
            cs.l2_pf.on_access(&acc, &mut cs.l2_pf_scratch);
            let frozen = cs.core.stats_frozen();
            let mut cands = std::mem::take(&mut cs.l2_pf_scratch);
            for cand in cands.drain(..) {
                self.issue_l2_prefetch(i, &acc, cand, frozen, now);
            }
            self.cores[i].l2_pf_scratch = cands;
        }
        self.scratch.tick_out = out;
    }

    fn issue_l2_prefetch(
        &mut self,
        i: usize,
        trigger: &L2Access,
        cand: L2PrefetchCandidate,
        frozen: bool,
        now: Cycle,
    ) {
        let cs = &mut self.cores[i];
        if !frozen {
            cs.l2_pf_stats.candidates += 1;
        }
        if cand.paddr / LINE_SIZE == trigger.paddr / LINE_SIZE
            || cs.l2.probe(cand.paddr)
            || cs.l2.has_mshr(cand.paddr)
        {
            if !frozen {
                cs.l2_pf_stats.dropped += 1;
            }
            return;
        }
        if !cs.l2_filter.filter(trigger, &cand) {
            if !frozen {
                cs.l2_pf_stats.filtered += 1;
            }
            return;
        }
        let id = self.fresh_id();
        let cs = &mut self.cores[i];
        let mut req = Request::rfo(id, i, trigger.pc, 0, cand.paddr, now);
        req.kind = ReqKind::PrefetchL2 {
            fill_llc_only: cand.fill_llc_only,
        };
        if cs.l2.push_prefetch(req, now) {
            if !frozen {
                cs.l2_pf_stats.issued += 1;
            }
        } else if !frozen {
            cs.l2_pf_stats.dropped += 1;
        }
    }

    fn tick_l1d(&mut self, i: usize, now: Cycle) {
        let mut out = std::mem::take(&mut self.scratch.tick_out);
        let _ = Component::tick(&mut self.cores[i].l1d, now, &mut out);
        for ev in out.pf_useful.drain(..) {
            self.attribute_prefetch_outcome(&ev);
        }
        for req in out.hits.drain(..) {
            match req.kind {
                ReqKind::Load => {
                    // Stamp before completion: `complete_load` finishes the
                    // journey and retires its slot.
                    self.stamp_journey(req.journey, Stage::L1Lookup, now);
                    self.complete_load(i, &req, Level::L1d, now);
                }
                ReqKind::PrefetchL1 { .. } => {
                    // Forwarded prefetch that hit here cannot happen (L1 is
                    // the origin), but stay safe.
                }
                _ => {}
            }
        }
        for req in out.forwards.drain(..) {
            self.stamp_journey(req.journey, Stage::L1Lookup, now);
            // Selective delay: the tagged load missed in L1D, so issue the
            // speculative DRAM request now.
            if req.kind == ReqKind::Load && req.offchip.decision == OffChipDecision::IssueOnL1dMiss
            {
                if let Some(seq) = req.lq_seq {
                    self.cores[i].core.mark_spec_issued(seq);
                }
                if !self.cores[i].core.stats_frozen() {
                    self.cores[i].offchip_stats.delayed_issued += 1;
                }
                let id = self.fresh_id();
                let spec = Request::speculative(id, i, req.pc, req.vaddr, req.paddr, now);
                self.spec_pending.push_delayed(now + 1, spec);
            }
            self.cores[i].l2.push_demand(req, now);
        }
        // L1 prefetcher hooks.
        for (req, hit) in out.demand_accesses.drain(..) {
            // Covers loads that merged into an existing L1 MSHR; for hits
            // the journey already completed above, so this is a no-op.
            self.stamp_journey(req.journey, Stage::L1Lookup, now);
            let acc = DemandAccess {
                core: i,
                pc: req.pc,
                vaddr: req.vaddr,
                hit,
                is_store: req.kind == ReqKind::Rfo,
                cycle: now,
            };
            let cs = &mut self.cores[i];
            cs.l1_pf.on_access(&acc, &mut cs.pf_scratch);
            let frozen = cs.core.stats_frozen();
            let mut cands = std::mem::take(&mut cs.pf_scratch);
            for cand in cands.drain(..) {
                self.issue_l1_prefetch(i, &req, cand, frozen, now);
            }
            self.cores[i].pf_scratch = cands;
        }
        self.scratch.tick_out = out;
    }

    fn issue_l1_prefetch(
        &mut self,
        i: usize,
        trigger: &Request,
        cand: PrefetchCandidate,
        frozen: bool,
        now: Cycle,
    ) {
        if !frozen {
            self.cores[i].l1_pf_stats.candidates += 1;
        }
        if cand.vaddr / LINE_SIZE == trigger.vaddr / LINE_SIZE {
            if !frozen {
                self.cores[i].l1_pf_stats.dropped += 1;
            }
            return;
        }
        let paddr = {
            let cs = &mut self.cores[i];
            cs.mmu.translate_untimed(&mut self.pt, i, cand.vaddr)
        };
        let cs = &mut self.cores[i];
        if cs.l1d.probe(paddr) || cs.l1d.has_mshr(paddr) {
            if !frozen {
                cs.l1_pf_stats.dropped += 1;
            }
            return;
        }
        let ctx = L1FilterCtx {
            core: i,
            trigger_pc: trigger.pc,
            trigger_vaddr: trigger.vaddr,
            pf_vaddr: cand.vaddr,
            pf_paddr: paddr,
            trigger_tag: trigger.offchip,
            cycle: now,
        };
        let (issue, ftag) = cs.l1_filter.filter(&ctx);
        if !issue {
            if !frozen {
                cs.l1_pf_stats.filtered += 1;
            }
            return;
        }
        let id = self.fresh_id();
        let cs = &mut self.cores[i];
        let mut req = Request::rfo(id, i, trigger.pc, cand.vaddr, paddr, now);
        req.kind = ReqKind::PrefetchL1 {
            fill_l1: cand.fill_l1,
        };
        req.vaddr = cand.vaddr;
        req.filter = ftag;
        req.pf_trigger = Some((trigger.pc, trigger.vaddr, trigger.offchip.decision));
        if cs.l1d.push_prefetch(req, now) {
            if !frozen {
                cs.l1_pf_stats.issued += 1;
            }
        } else if !frozen {
            cs.l1_pf_stats.dropped += 1;
        }
    }

    fn tick_core(&mut self, i: usize, now: Cycle) {
        // Retire.
        let retired = self.cores[i].core.retire(now);
        if retired > 0 {
            self.last_retire = now;
        }
        // Dispatch (with off-chip prediction at load dispatch).
        {
            let cs = &mut self.cores[i];
            let mut hook = PredictHook {
                offchip: cs.offchip.as_mut(),
                stats: &mut cs.offchip_stats,
                frozen: cs.core.stats_frozen(),
                core: i,
            };
            let trace = cs.trace.as_mut();
            let mut feed = || trace.next_record();
            if !cs.core.dispatch(now, &mut feed, &mut hook) {
                cs.trace_exhausted = true;
            }
        }
        // Schedule ready instructions; issue loads to the L1D. A load whose
        // tag says IssueNow launches its speculative DRAM request here —
        // at address generation, in parallel with the L1D lookup, exactly
        // like Hermes (the address of a dependent load is not known at
        // dispatch).
        let mut loads = std::mem::take(&mut self.scratch.loads);
        self.cores[i].core.schedule_into(now, &mut loads);
        for &l in &loads {
            let id = self.fresh_id();
            let cs = &mut self.cores[i];
            let t = cs.mmu.translate(&mut self.pt, i, l.vaddr);
            if !cs.core.stats_frozen() {
                if t.dtlb_miss {
                    cs.core.stats.dtlb_misses += 1;
                }
                if t.stlb_miss {
                    cs.core.stats.stlb_misses += 1;
                }
            }
            let mut req =
                Request::demand_load(id, i, l.pc, l.vaddr, t.paddr, l.seq, l.offchip, now);
            if let Some(tl) = &mut self.timeline {
                req.journey = tl.begin_load(
                    i,
                    l.pc,
                    l.vaddr,
                    now,
                    offchip_code(l.offchip.decision),
                    l.offchip.valid,
                );
            }
            let cs = &mut self.cores[i];
            cs.l1d.push_demand(req, now + t.latency);
            if l.offchip.decision == OffChipDecision::IssueNow {
                let id = self.fresh_id();
                let spec = Request::speculative(id, i, l.pc, l.vaddr, t.paddr, now);
                self.spec_pending
                    .push_issued(now + self.cfg.core.offchip_predictor_latency, spec);
            }
        }
        loads.clear();
        self.scratch.loads = loads;
        // Drain one store per cycle through the L1D write port.
        if let Some(st) = self.cores[i].core.pop_store() {
            let id = self.fresh_id();
            let cs = &mut self.cores[i];
            let t = cs.mmu.translate(&mut self.pt, i, st.vaddr);
            if !cs.l1d.store_hit(t.paddr) {
                let req = Request::rfo(id, i, st.pc, st.vaddr, t.paddr, now);
                cs.l1d.push_demand(req, now + t.latency);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_trace::{Reg, TraceRecord, VecTrace};

    fn stream_trace(n: usize, stride: u64) -> VecTrace {
        let recs: Vec<TraceRecord> = (0..n)
            .map(|i| {
                TraceRecord::load(
                    0x400,
                    0x10_0000 + i as u64 * stride,
                    8,
                    Reg(1),
                    [None, None],
                )
            })
            .collect();
        VecTrace::new("stream", recs)
    }

    fn tiny_system(trace: VecTrace) -> System {
        let cfg = SystemConfig::test_tiny(1);
        System::new(cfg, vec![CoreSetup::new(Box::new(trace))])
    }

    /// The `obs` feature records engine activity into the global
    /// registry without changing any simulated result (bit-identity
    /// under the feature is pinned by the golden/determinism suites in
    /// CI; here we pin that the metrics actually move).
    #[cfg(feature = "obs")]
    #[test]
    fn obs_feature_records_engine_metrics() {
        let mut sys = tiny_system(stream_trace(300, 64)).with_engine_mode(EngineMode::Event);
        let report = sys.run(0, 300);
        assert_eq!(report.cores[0].core.instructions, 300);
        let snap = tlp_obs::global().snapshot();
        let ticks = snap.counter("sim_ticks_executed_total").unwrap_or(0);
        assert!(ticks >= sys.ticks_executed(), "tick counter must advance");
        assert!(snap.counter("sim_cycles_advanced_total").unwrap_or(0) >= sys.cycle());
        assert!(
            snap.histogram("sim_cache_tick_ns")
                .is_some_and(|h| h.count > 0),
            "cache-section spans must record"
        );
        assert!(
            snap.histogram("sim_rob_walk_ns")
                .is_some_and(|h| h.count > 0),
            "event mode must time ROB walks"
        );
    }

    #[test]
    fn runs_a_simple_load_stream_to_completion() {
        let mut sys = tiny_system(stream_trace(500, 64));
        let report = sys.run(0, 500);
        assert_eq!(report.cores[0].core.instructions, 500);
        assert!(report.cores[0].core.ipc() > 0.0);
        // Every line is cold: all loads miss everywhere, all from DRAM.
        assert_eq!(report.cores[0].l1d.demand_misses, 500);
        assert!(report.dram.reads >= 490);
    }

    #[test]
    fn repeated_accesses_hit_in_l1() {
        // 64-byte working set: everything hits after the first miss.
        let recs: Vec<TraceRecord> = (0..200)
            .map(|_| TraceRecord::load(0x400, 0x5000, 8, Reg(1), [None, None]))
            .collect();
        let mut sys = tiny_system(VecTrace::new("hot", recs));
        let report = sys.run(0, 200);
        // Independent same-line loads all issue before the first fill
        // returns; they merge into one MSHR, so DRAM sees exactly one read.
        assert_eq!(report.dram.reads, 1);
        assert_eq!(
            report.cores[0].l1d.demand_hits + report.cores[0].l1d.demand_misses,
            200
        );
        assert!(report.cores[0].l1d.demand_hits >= 100);
    }

    #[test]
    fn hits_are_faster_than_misses() {
        let hot: Vec<TraceRecord> = (0..400)
            .map(|_| TraceRecord::load(0x400, 0x5000, 8, Reg(1), [Some(Reg(1)), None]))
            .collect();
        let cold: Vec<TraceRecord> = (0..400)
            .map(|i| {
                TraceRecord::load(0x400, 0x10_0000 + i * 4096, 8, Reg(1), [Some(Reg(1)), None])
            })
            .collect();
        let ipc_hot = tiny_system(VecTrace::new("hot", hot)).run(0, 400).ipc();
        let ipc_cold = tiny_system(VecTrace::new("cold", cold)).run(0, 400).ipc();
        assert!(
            ipc_hot > 3.0 * ipc_cold,
            "dependent cold loads must be much slower: hot {ipc_hot} cold {ipc_cold}"
        );
    }

    #[test]
    fn stores_generate_rfos_and_writebacks() {
        let recs: Vec<TraceRecord> = (0..200)
            .map(|i| TraceRecord::store(0x400, 0x20_0000 + i * 64, 8, None, None))
            .collect();
        let mut sys = tiny_system(VecTrace::new("stores", recs));
        // Measure target beyond the trace length: the run ends when the
        // finite trace drains, so every post-retirement RFO completes.
        let report = sys.run(0, 100_000);
        assert_eq!(report.cores[0].core.stores, 200);
        assert!(report.dram.reads > 100, "store misses fetch lines (RFO)");
        // Dirty lines evicted from the tiny hierarchy reach DRAM as writes.
        assert!(report.dram.writes > 50, "writebacks must reach DRAM");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = tiny_system(stream_trace(1000, 192));
            let r = sys.run(100, 800);
            (
                r.total_cycles,
                r.dram.transactions(),
                r.cores[0].l1d.demand_misses,
            )
        };
        assert_eq!(run(), run());
    }

    /// A working set cycling just past the tiny LLC's capacity: without a
    /// victim cache every revisit goes to DRAM; with one, recent victims
    /// are recovered on chip.
    fn thrash_trace(rounds: usize, lines: u64) -> VecTrace {
        let mut recs = Vec::new();
        for _ in 0..rounds {
            for i in 0..lines {
                recs.push(TraceRecord::load(
                    0x400,
                    0x10_0000 + i * 64,
                    8,
                    Reg(1),
                    [None, None],
                ));
            }
        }
        VecTrace::new("thrash", recs)
    }

    #[test]
    fn victim_cache_reduces_dram_reads_under_conflicts() {
        // test_tiny LLC: 32 sets × 4 ways = 128 lines. 160 lines thrash it.
        let run = |vc_entries: usize| {
            let mut cfg = SystemConfig::test_tiny(1);
            cfg.victim_cache_entries = vc_entries;
            let mut sys = System::new(cfg, vec![CoreSetup::new(Box::new(thrash_trace(6, 160)))]);
            sys.run(0, 6 * 160)
        };
        let without = run(0);
        let with = run(64);
        assert_eq!(without.victim.hits, 0);
        assert!(with.victim.hits > 0, "victim cache must capture revisits");
        assert!(with.victim.insertions > 0);
        assert!(
            with.dram.reads < without.dram.reads,
            "victim hits must shave DRAM reads: {} !< {}",
            with.dram.reads,
            without.dram.reads
        );
    }

    #[test]
    fn victim_cache_is_inert_for_cache_resident_sets() {
        let mut cfg = SystemConfig::test_tiny(1);
        cfg.victim_cache_entries = 16;
        // 8 lines: resident in L1D after first touch, LLC never evicts.
        let recs: Vec<TraceRecord> = (0..200)
            .map(|i| TraceRecord::load(0x400, 0x9000 + (i % 8) * 64, 8, Reg(1), [None, None]))
            .collect();
        let mut sys = System::new(
            cfg,
            vec![CoreSetup::new(Box::new(VecTrace::new("s", recs)))],
        );
        let report = sys.run(0, 200);
        assert_eq!(report.victim.hits, 0);
    }

    #[test]
    fn non_lru_llc_still_runs_to_completion() {
        for kind in crate::replacement::ReplKind::ALL {
            let mut cfg = SystemConfig::test_tiny(1);
            cfg.llc_repl = kind;
            let mut sys = System::new(cfg, vec![CoreSetup::new(Box::new(stream_trace(400, 64)))]);
            let report = sys.run(0, 400);
            assert_eq!(
                report.cores[0].core.instructions,
                400,
                "policy {} broke the run",
                kind.name()
            );
        }
    }

    /// A predictor that always returns the same decision, for exercising
    /// the speculative path deterministically.
    struct FixedPredictor(OffChipDecision);

    impl crate::hooks::OffChipPredictor for FixedPredictor {
        fn predict_load(&mut self, _ctx: &crate::hooks::LoadCtx) -> OffChipTag {
            OffChipTag {
                decision: self.0,
                confidence: 0,
                indices: tlp_perceptron::FeatureIndices::empty(),
                valid: true,
            }
        }
        fn train_load(&mut self, _ctx: &crate::hooks::LoadCtx, _tag: &OffChipTag, _served: Level) {}
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    use crate::hooks::OffChipDecision;
    use crate::hooks::OffChipTag;

    #[test]
    fn issue_now_predictions_reach_dram_and_serve_demands() {
        // Cold dependent loads: every speculative request is correct.
        let recs: Vec<TraceRecord> = (0..300)
            .map(|i| {
                TraceRecord::load(0x400, 0x40_0000 + i * 4096, 8, Reg(1), [Some(Reg(1)), None])
            })
            .collect();
        let cfg = SystemConfig::test_tiny(1);
        let setup = CoreSetup::new(Box::new(VecTrace::new("cold", recs)))
            .with_offchip(Box::new(FixedPredictor(OffChipDecision::IssueNow)));
        let mut sys = System::new(cfg, vec![setup]);
        let r = sys.run(0, 300);
        assert!(r.dram.spec_reads > 0, "speculative reads must be scheduled");
        assert!(
            r.cores[0].offchip.issued_now > 250,
            "every load must be predicted off-chip"
        );
        assert!(
            r.dram.spec_consumed > 0,
            "cold demands must consume DDRP fills"
        );
    }

    #[test]
    fn wrong_speculation_on_hot_lines_is_wasted() {
        // One hot line: after the first touch every load hits in L1D, so
        // speculative DRAM fills expire unconsumed.
        let recs: Vec<TraceRecord> = (0..300)
            .map(|_| TraceRecord::load(0x400, 0x5000, 8, Reg(1), [None, None]))
            .collect();
        let cfg = SystemConfig::test_tiny(1);
        let setup = CoreSetup::new(Box::new(VecTrace::new("hot", recs)))
            .with_offchip(Box::new(FixedPredictor(OffChipDecision::IssueNow)));
        let mut sys = System::new(cfg, vec![setup]);
        let r = sys.run(0, 300);
        assert!(
            r.dram.spec_wasted > 0,
            "speculation for L1D-resident lines must expire unused"
        );
        // The waste shows up as extra DRAM transactions over the single
        // demand fill.
        assert!(r.dram.transactions() > 1);
    }

    #[test]
    fn delayed_predictions_do_not_issue_on_l1d_hits() {
        let recs: Vec<TraceRecord> = (0..300)
            .map(|_| TraceRecord::load(0x400, 0x5000, 8, Reg(1), [None, None]))
            .collect();
        let cfg = SystemConfig::test_tiny(1);
        let setup = CoreSetup::new(Box::new(VecTrace::new("hot", recs)))
            .with_offchip(Box::new(FixedPredictor(OffChipDecision::IssueOnL1dMiss)));
        let mut sys = System::new(cfg, vec![setup]);
        let r = sys.run(0, 300);
        let oc = &r.cores[0].offchip;
        assert!(oc.tagged_delayed > 250, "every load is tagged");
        assert_eq!(oc.issued_now, 0, "delayed mode never issues at the core");
        // Only the cold first touch (plus any loads issued before its fill
        // returns) can issue the delayed request.
        assert!(
            oc.delayed_issued < 50,
            "L1D hits must not trigger delayed requests: {}",
            oc.delayed_issued
        );
    }

    #[test]
    fn delayed_predictions_issue_on_l1d_misses() {
        let recs: Vec<TraceRecord> = (0..300)
            .map(|i| {
                TraceRecord::load(0x400, 0x40_0000 + i * 4096, 8, Reg(1), [Some(Reg(1)), None])
            })
            .collect();
        let cfg = SystemConfig::test_tiny(1);
        let setup = CoreSetup::new(Box::new(VecTrace::new("cold", recs)))
            .with_offchip(Box::new(FixedPredictor(OffChipDecision::IssueOnL1dMiss)));
        let mut sys = System::new(cfg, vec![setup]);
        let r = sys.run(0, 300);
        let oc = &r.cores[0].offchip;
        assert!(
            oc.delayed_issued > 250,
            "every cold miss must fire its delayed request: {}",
            oc.delayed_issued
        );
        assert!(r.dram.spec_reads > 0);
    }

    #[test]
    fn multi_core_shares_llc_and_dram() {
        let cfg = SystemConfig::test_tiny(2);
        let mut sys = System::new(
            cfg,
            vec![
                CoreSetup::new(Box::new(stream_trace(400, 64))),
                CoreSetup::new(Box::new(stream_trace(400, 64))),
            ],
        );
        let report = sys.run(0, 400);
        assert_eq!(report.cores.len(), 2);
        for c in &report.cores {
            assert_eq!(c.core.instructions, 400);
        }
        // Same virtual addresses on both cores map to distinct physical
        // lines, so DRAM sees both streams.
        assert!(report.dram.reads >= 700);
    }

    #[test]
    fn warmup_stats_are_discarded() {
        let mut sys = tiny_system(stream_trace(2000, 64));
        let report = sys.run(1000, 500);
        assert_eq!(report.cores[0].core.instructions, 500);
        assert!(report.cores[0].l1d.demand_misses <= 510);
    }

    #[test]
    #[should_panic(expected = "one CoreSetup per core")]
    fn setup_count_must_match() {
        let cfg = SystemConfig::test_tiny(2);
        let _ = System::new(cfg, vec![CoreSetup::new(Box::new(stream_trace(10, 64)))]);
    }

    #[test]
    fn finite_trace_ends_cleanly() {
        let mut sys = tiny_system(stream_trace(50, 64));
        let report = sys.run(0, 10_000);
        assert_eq!(report.cores[0].core.instructions, 50);
    }

    /// Dependent cold loads (a pointer-chase shape): the system spends
    /// most cycles fully stalled on DRAM, which is exactly where the
    /// event engine must both match the cycle engine bit-for-bit and
    /// skip a large share of the ticks.
    fn chase_trace(n: usize) -> VecTrace {
        let recs: Vec<TraceRecord> = (0..n as u64)
            .map(|i| {
                TraceRecord::load(0x400, 0x40_0000 + i * 4096, 8, Reg(1), [Some(Reg(1)), None])
            })
            .collect();
        VecTrace::new("chase", recs)
    }

    fn run_both(make: impl Fn() -> System, warmup: u64, measure: u64) -> (SimReport, SimReport) {
        let mut cyc = make();
        cyc.set_engine_mode(EngineMode::Cycle);
        let rc = cyc.run(warmup, measure);
        let mut evt = make();
        evt.set_engine_mode(EngineMode::Event);
        let re = evt.run(warmup, measure);
        assert_eq!(
            cyc.cycle(),
            evt.cycle(),
            "both engines must land on the same final cycle"
        );
        assert_eq!(
            cyc.ticks_executed(),
            cyc.cycle(),
            "cycle mode executes every cycle"
        );
        assert!(
            evt.ticks_executed() <= cyc.ticks_executed(),
            "event mode can never execute more ticks than cycle mode"
        );
        (rc, re)
    }

    #[test]
    fn event_mode_is_bit_identical_on_a_memory_bound_chase() {
        let (rc, re) = run_both(|| tiny_system(chase_trace(600)), 100, 500);
        assert_eq!(rc, re);
    }

    #[test]
    fn event_mode_skips_idle_cycles_on_a_memory_bound_chase() {
        let mut evt = tiny_system(chase_trace(600));
        evt.set_engine_mode(EngineMode::Event);
        let _ = evt.run(0, 600);
        assert!(
            evt.ticks_executed() * 2 < evt.cycle(),
            "a dependent chase must skip most cycles: executed {} of {}",
            evt.ticks_executed(),
            evt.cycle()
        );
    }

    #[test]
    fn event_mode_is_bit_identical_on_streams_and_hot_lines() {
        let (rc, re) = run_both(|| tiny_system(stream_trace(1000, 192)), 100, 800);
        assert_eq!(rc, re);
        let hot = || {
            let recs: Vec<TraceRecord> = (0..400)
                .map(|_| TraceRecord::load(0x400, 0x5000, 8, Reg(1), [Some(Reg(1)), None]))
                .collect();
            tiny_system(VecTrace::new("hot", recs))
        };
        let (rc, re) = run_both(hot, 50, 300);
        assert_eq!(rc, re);
    }

    #[test]
    fn event_mode_is_bit_identical_with_stores_and_thrashing() {
        let stores = || {
            let recs: Vec<TraceRecord> = (0..200)
                .map(|i| TraceRecord::store(0x400, 0x20_0000 + i * 64, 8, None, None))
                .collect();
            tiny_system(VecTrace::new("stores", recs))
        };
        let (rc, re) = run_both(stores, 0, 100_000);
        assert_eq!(rc, re);
        let (rc, re) = run_both(|| tiny_system(thrash_trace(6, 160)), 0, 6 * 160);
        assert_eq!(rc, re);
    }

    #[test]
    fn event_mode_is_bit_identical_with_speculative_predictors() {
        for decision in [
            OffChipDecision::IssueNow,
            OffChipDecision::IssueOnL1dMiss,
            OffChipDecision::NoIssue,
        ] {
            let make = || {
                let setup = CoreSetup::new(Box::new(chase_trace(300)))
                    .with_offchip(Box::new(FixedPredictor(decision)));
                System::new(SystemConfig::test_tiny(1), vec![setup])
            };
            let (rc, re) = run_both(make, 0, 300);
            assert_eq!(rc, re, "decision {decision:?} diverged");
        }
    }

    #[test]
    fn event_mode_is_bit_identical_multi_core() {
        let make = || {
            System::new(
                SystemConfig::test_tiny(2),
                vec![
                    CoreSetup::new(Box::new(stream_trace(400, 64))),
                    CoreSetup::new(Box::new(chase_trace(400))),
                ],
            )
        };
        let (rc, re) = run_both(make, 50, 350);
        assert_eq!(rc, re);
    }

    /// Mispredicted branches racing memory-blocked ROB heads in a tiny
    /// ROB: the shape where a stall-resolution wake-up gated on ROB
    /// space (dispatch resolves the stall even when the ROB is full)
    /// would let event mode skip the mispredict penalty cycle mode pays.
    #[test]
    fn event_mode_is_bit_identical_under_branch_stalls_with_full_rob() {
        let make_trace = || {
            let mut recs = Vec::new();
            let mut x = 0x1234_5678_9abc_def0u64;
            for i in 0..600u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Heads that resolve on-chip fast (hot line) or off-chip
                // slow (cold dependent), racing the mispredict penalty...
                let addr = if x & 4 == 0 {
                    0x5000
                } else {
                    0x40_0000 + i * 4096
                };
                recs.push(TraceRecord::load(
                    0x400,
                    addr,
                    8,
                    Reg(1),
                    [Some(Reg(1)), None],
                ));
                // ...chased by pseudo-random branches that keep
                // mispredicting and stalling fetch behind them.
                recs.push(TraceRecord::branch(0x410 + i * 8, x & 1 == 0, 0x400, None));
                recs.push(TraceRecord::alu(0x418, Some(Reg(2)), [None, None]));
                recs.push(TraceRecord::branch(0x420 + i * 8, x & 2 == 0, 0x400, None));
            }
            VecTrace::new("branchy", recs)
        };
        for rob in [4usize, 8, 16] {
            let make = || {
                let mut cfg = SystemConfig::test_tiny(1);
                cfg.core.rob = rob;
                cfg.core.load_queue = rob;
                cfg.core.store_queue = rob;
                // A penalty longer than an on-chip hit: resolving the
                // stall late (or never) visibly shifts fetch timing.
                cfg.core.mispredict_penalty = 30;
                System::new(cfg, vec![CoreSetup::new(Box::new(make_trace()))])
            };
            let (rc, re) = run_both(make, 100, 2000);
            assert_eq!(rc, re, "rob={rob} diverged");
        }
    }

    #[test]
    fn engine_mode_parses_and_displays() {
        assert_eq!("cycle".parse::<EngineMode>(), Ok(EngineMode::Cycle));
        assert_eq!("event".parse::<EngineMode>(), Ok(EngineMode::Event));
        assert!("evnet".parse::<EngineMode>().is_err());
        assert_eq!(EngineMode::Event.to_string(), "event");
        assert_eq!(EngineMode::default(), EngineMode::Cycle);
    }

    /// The trigger's *two-bit* off-chip decision must survive the trip
    /// through the stored prefetch metadata into the filter-training
    /// context. The predecessor (`from_offchip_bit`) collapsed the
    /// decision to one bit and always reconstructed `IssueOnL1dMiss`, so
    /// an `IssueNow` trigger trained the filter with the wrong decision.
    #[test]
    fn filter_training_sees_the_triggers_original_decision() {
        use std::sync::{Arc, Mutex};

        /// Predicts `IssueNow` for every load.
        struct AlwaysNow;
        impl OffChipPredictor for AlwaysNow {
            fn predict_load(&mut self, _ctx: &LoadCtx) -> OffChipTag {
                OffChipTag {
                    decision: OffChipDecision::IssueNow,
                    confidence: 0,
                    indices: tlp_perceptron::FeatureIndices::empty(),
                    valid: true,
                }
            }
            fn train_load(&mut self, _c: &LoadCtx, _t: &OffChipTag, _s: Level) {}
            fn name(&self) -> &'static str {
                "always-now"
            }
        }

        /// Next-line on every miss, so prefetches actually issue.
        struct MissNextLine;
        impl L1Prefetcher for MissNextLine {
            fn on_access(&mut self, a: &DemandAccess, out: &mut Vec<PrefetchCandidate>) {
                if !a.hit {
                    out.push(PrefetchCandidate {
                        vaddr: (a.vaddr & !(LINE_SIZE - 1)) + LINE_SIZE,
                        fill_l1: true,
                    });
                }
            }
            fn name(&self) -> &'static str {
                "miss-next-line"
            }
        }

        /// Pass-through filter recording every training decision.
        struct Recorder(Arc<Mutex<Vec<OffChipDecision>>>);
        impl L1PrefetchFilter for Recorder {
            fn filter(&mut self, _ctx: &L1FilterCtx) -> (bool, crate::hooks::FilterTag) {
                (true, crate::hooks::FilterTag::default())
            }
            fn train(&mut self, ctx: &L1FilterCtx, _t: &crate::hooks::FilterTag, _s: Level) {
                self.0
                    .lock()
                    .expect("recorder")
                    .push(ctx.trigger_tag.decision);
            }
            fn name(&self) -> &'static str {
                "recorder"
            }
        }

        let seen = Arc::new(Mutex::new(Vec::new()));
        let setup = CoreSetup::new(Box::new(stream_trace(400, 64)))
            .with_offchip(Box::new(AlwaysNow))
            .with_l1_prefetcher(Box::new(MissNextLine))
            .with_l1_filter(Box::new(Recorder(Arc::clone(&seen))));
        let mut sys = System::new(SystemConfig::test_tiny(1), vec![setup]);
        let _ = sys.run(0, 400);
        let seen = seen.lock().expect("recorder");
        assert!(
            !seen.is_empty(),
            "the stream must complete at least one prefetch"
        );
        assert!(
            seen.iter().all(|&d| d == OffChipDecision::IssueNow),
            "training contexts must carry the trigger's IssueNow decision, got {seen:?}"
        );
    }
}
