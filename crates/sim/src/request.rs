//! The memory request that travels through the hierarchy.

use crate::hooks::{FilterTag, OffChipDecision, OffChipTag};
use crate::types::{CoreId, Cycle, Level, LINE_SIZE};

/// What kind of request this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Demand load from the core.
    Load,
    /// Store miss (read-for-ownership) issued by the L1D write path.
    Rfo,
    /// L1D prefetch; `fill_l1` false fills only down to the L2.
    PrefetchL1 {
        /// Whether the fill should reach the L1D array.
        fill_l1: bool,
    },
    /// L2 prefetch (SPP); `fill_llc_only` true fills only the LLC.
    PrefetchL2 {
        /// Whether the fill should stop at the LLC.
        fill_llc_only: bool,
    },
    /// Dirty-line writeback travelling downstream.
    Writeback,
    /// Speculative DRAM read issued by an off-chip predictor.
    Speculative,
}

impl ReqKind {
    /// True for demand loads/RFOs (the accesses MPKI counts).
    #[must_use]
    pub fn is_demand(self) -> bool {
        matches!(self, ReqKind::Load | ReqKind::Rfo)
    }

    /// True for either prefetch kind.
    #[must_use]
    pub fn is_prefetch(self) -> bool {
        matches!(
            self,
            ReqKind::PrefetchL1 { .. } | ReqKind::PrefetchL2 { .. }
        )
    }

    /// Nearest level this request's fill should reach.
    #[must_use]
    pub fn fill_level(self) -> Level {
        match self {
            ReqKind::Load | ReqKind::Rfo => Level::L1d,
            ReqKind::PrefetchL1 { fill_l1 } => {
                if fill_l1 {
                    Level::L1d
                } else {
                    Level::L2
                }
            }
            ReqKind::PrefetchL2 { fill_llc_only } => {
                if fill_llc_only {
                    Level::Llc
                } else {
                    Level::L2
                }
            }
            ReqKind::Writeback | ReqKind::Speculative => Level::Dram,
        }
    }
}

/// A memory request. One instance travels down the hierarchy, is parked in
/// MSHRs, and is routed back up when data arrives.
///
/// Every field is stored inline — no heap indirection — so moving or
/// cloning a request is a fixed-size copy and queue/MSHR/freelist churn
/// through the hot loop never touches the allocator. The size pin below
/// keeps the struct from silently growing a pointer-sized field (or a
/// `Box`/`Vec`) that would turn every queue push into an allocation.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique id.
    pub id: u64,
    /// Issuing core.
    pub core: CoreId,
    /// Request kind.
    pub kind: ReqKind,
    /// PC of the originating instruction (0 for writebacks).
    pub pc: u64,
    /// Original virtual address (0 for writebacks).
    pub vaddr: u64,
    /// Physical byte address.
    pub paddr: u64,
    /// ROB sequence number to wake on completion (demand loads).
    pub lq_seq: Option<u64>,
    /// Off-chip prediction metadata (demand loads).
    pub offchip: OffChipTag,
    /// Prefetch-filter metadata (L1 prefetches).
    pub filter: FilterTag,
    /// L1 filter context snapshot needed for SLP training, packed small:
    /// (trigger_pc, trigger_vaddr, trigger FLP decision). The full two-bit
    /// decision is stored — not just the off-chip bit — so training
    /// contexts rebuilt from this metadata see exactly what the predictor
    /// decided at dispatch.
    pub pf_trigger: Option<(u64, u64, OffChipDecision)>,
    /// Cycle the request was created.
    pub born: Cycle,
    /// Level that served the data (set on completion).
    pub served_from: Option<Level>,
    /// Timeline journey id ([`NO_JOURNEY`] when the load is not sampled).
    pub journey: u32,
}

/// Sentinel for [`Request::journey`]: this request carries no flight record.
pub const NO_JOURNEY: u32 = u32::MAX;

/// Hot-loop size budget: a request must stay a plain fixed-size copy.
/// 192 bytes covers the current layout with headroom for one more tag;
/// growing past it deserves a deliberate decision, not an accident.
const _REQUEST_STAYS_INLINE: () = assert!(std::mem::size_of::<Request>() <= 192);

impl Request {
    /// Physical cache-line address.
    #[inline]
    #[must_use]
    pub fn line(&self) -> u64 {
        self.paddr / LINE_SIZE
    }
}

/// Builder-ish constructor helpers.
impl Request {
    /// A demand load. The argument list mirrors the hardware fields a
    /// load-queue entry carries; a builder would obscure that 1:1 mapping.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn demand_load(
        id: u64,
        core: CoreId,
        pc: u64,
        vaddr: u64,
        paddr: u64,
        lq_seq: u64,
        offchip: OffChipTag,
        born: Cycle,
    ) -> Self {
        Self {
            id,
            core,
            kind: ReqKind::Load,
            pc,
            vaddr,
            paddr,
            lq_seq: Some(lq_seq),
            offchip,
            filter: FilterTag::default(),
            pf_trigger: None,
            born,
            served_from: None,
            journey: NO_JOURNEY,
        }
    }

    /// A store-miss RFO.
    #[must_use]
    pub fn rfo(id: u64, core: CoreId, pc: u64, vaddr: u64, paddr: u64, born: Cycle) -> Self {
        Self {
            id,
            core,
            kind: ReqKind::Rfo,
            pc,
            vaddr,
            paddr,
            lq_seq: None,
            offchip: OffChipTag::none(),
            filter: FilterTag::default(),
            pf_trigger: None,
            born,
            served_from: None,
            journey: NO_JOURNEY,
        }
    }

    /// A writeback of a dirty line.
    #[must_use]
    pub fn writeback(id: u64, core: CoreId, paddr: u64, born: Cycle) -> Self {
        Self {
            id,
            core,
            kind: ReqKind::Writeback,
            pc: 0,
            vaddr: 0,
            paddr,
            lq_seq: None,
            offchip: OffChipTag::none(),
            filter: FilterTag::default(),
            pf_trigger: None,
            born,
            served_from: None,
            journey: NO_JOURNEY,
        }
    }

    /// A speculative DRAM read triggered by an off-chip predictor.
    #[must_use]
    pub fn speculative(
        id: u64,
        core: CoreId,
        pc: u64,
        vaddr: u64,
        paddr: u64,
        born: Cycle,
    ) -> Self {
        Self {
            id,
            core,
            kind: ReqKind::Speculative,
            pc,
            vaddr,
            paddr,
            lq_seq: None,
            offchip: OffChipTag::none(),
            filter: FilterTag::default(),
            pf_trigger: None,
            born,
            served_from: None,
            journey: NO_JOURNEY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_levels() {
        assert_eq!(ReqKind::Load.fill_level(), Level::L1d);
        assert_eq!(
            ReqKind::PrefetchL1 { fill_l1: false }.fill_level(),
            Level::L2
        );
        assert_eq!(
            ReqKind::PrefetchL1 { fill_l1: true }.fill_level(),
            Level::L1d
        );
        assert_eq!(
            ReqKind::PrefetchL2 {
                fill_llc_only: true
            }
            .fill_level(),
            Level::Llc
        );
        assert_eq!(
            ReqKind::PrefetchL2 {
                fill_llc_only: false
            }
            .fill_level(),
            Level::L2
        );
    }

    #[test]
    fn kind_classification() {
        assert!(ReqKind::Load.is_demand());
        assert!(ReqKind::Rfo.is_demand());
        assert!(!ReqKind::Writeback.is_demand());
        assert!(ReqKind::PrefetchL1 { fill_l1: true }.is_prefetch());
        assert!(!ReqKind::Speculative.is_prefetch());
    }

    #[test]
    fn line_address() {
        let r = Request::rfo(1, 0, 0, 0, 0x1087, 0);
        assert_eq!(r.line(), 0x42);
    }
}
