//! System configuration (the paper's Table III).

use serde::{Deserialize, Serialize};

use crate::replacement::ReplKind;
use crate::types::LINE_SIZE;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency in cycles.
    pub latency: u64,
    /// Number of MSHR entries (bounds outstanding misses).
    pub mshrs: usize,
    /// Prefetch-queue capacity (pending prefetch issues).
    pub prefetch_queue: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * LINE_SIZE
    }

    fn validate(&self, name: &str) -> Result<(), ConfigError> {
        if !self.sets.is_power_of_two() {
            return Err(ConfigError(format!("{name}: sets must be a power of two")));
        }
        if self.ways == 0 || self.mshrs == 0 {
            return Err(ConfigError(format!(
                "{name}: ways and mshrs must be nonzero"
            )));
        }
        Ok(())
    }
}

/// TLB geometry (hit latency modelled, miss falls through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

/// DRAM controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Column access latency (cycles).
    pub t_cas: u64,
    /// Row activation latency (cycles).
    pub t_rcd: u64,
    /// Precharge latency (cycles).
    pub t_rp: u64,
    /// Data-bus bandwidth in GB/s (total across cores).
    pub bus_gbps: f64,
    /// CPU frequency in GHz (converts bandwidth to cycles/line).
    pub cpu_ghz: f64,
    /// Read-queue capacity.
    pub read_queue: usize,
    /// Write-queue capacity.
    pub write_queue: usize,
    /// Capacity of the DDRP buffer holding completed speculative fills.
    pub ddrp_buffer: usize,
}

impl DramConfig {
    /// Bus occupancy per 64-byte transfer, in CPU cycles (≥ 1).
    #[must_use]
    pub fn burst_cycles(&self) -> u64 {
        let bytes_per_cycle = self.bus_gbps / self.cpu_ghz;
        ((LINE_SIZE as f64 / bytes_per_cycle).round() as u64).max(1)
    }
}

/// Out-of-order core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Fetch/dispatch width (instructions per cycle).
    pub fetch_width: usize,
    /// Issue width (instructions starting execution per cycle).
    pub issue_width: usize,
    /// Retire width.
    pub retire_width: usize,
    /// Re-order buffer capacity.
    pub rob: usize,
    /// Load queue capacity.
    pub load_queue: usize,
    /// Store queue capacity.
    pub store_queue: usize,
    /// Scheduler window (oldest N unissued entries examined per cycle).
    pub sched_window: usize,
    /// L1D ports (loads issued to the cache per cycle).
    pub l1d_ports: usize,
    /// Extra penalty cycles after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Floating-point execution latency.
    pub fp_latency: u64,
    /// Latency before a predictor-triggered speculative DRAM request leaves
    /// the core (the paper's 6-cycle FLP/SLP latency).
    pub offchip_predictor_latency: u64,
    /// Page-walk latency on an STLB miss (fixed-latency walker).
    pub page_walk_latency: u64,
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// L1 data cache (per core).
    pub l1d: CacheConfig,
    /// L2 cache (per core).
    pub l2: CacheConfig,
    /// Shared LLC (sized per core count by [`SystemConfig::cascade_lake`]).
    pub llc: CacheConfig,
    /// L1 DTLB.
    pub dtlb: TlbConfig,
    /// Unified second-level TLB.
    pub stlb: TlbConfig,
    /// DRAM controller.
    pub dram: DramConfig,
    /// LLC replacement policy (Table III: LRU; the other policies feed the
    /// replacement-ablation experiment).
    #[serde(default)]
    pub llc_repl: ReplKind,
    /// LLC victim-cache entries (0 = disabled, the paper's configuration;
    /// nonzero sizes feed the victim-cache extension experiment).
    #[serde(default)]
    pub victim_cache_entries: usize,
}

/// Configuration validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl SystemConfig {
    /// The paper's baseline (Table III): Intel Cascade Lake-like, 3.8 GHz,
    /// 4-wide OoO, 224-entry ROB, 32 KB L1D, 1 MB L2, 1.375 MB LLC/core,
    /// DDR4 with 12.8 GB/s per core (single-core) or 3.2 GB/s per core
    /// (multi-core).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn cascade_lake(cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        let per_core_gbps = if cores == 1 { 12.8 } else { 3.2 };
        Self::cascade_lake_with_bandwidth(cores, per_core_gbps)
    }

    /// Cascade Lake baseline with an explicit per-core DRAM bandwidth
    /// (the Figure 16 sensitivity knob).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the bandwidth is not positive.
    #[must_use]
    pub fn cascade_lake_with_bandwidth(cores: usize, per_core_gbps: f64) -> Self {
        assert!(cores > 0, "at least one core required");
        assert!(per_core_gbps > 0.0, "bandwidth must be positive");
        // LLC: 1.375 MB per core, 11-way => 2048 sets per core.
        let llc_sets = 2048 * cores;
        Self {
            cores,
            core: CoreConfig {
                fetch_width: 4,
                issue_width: 4,
                retire_width: 4,
                rob: 224,
                load_queue: 96,
                store_queue: 64,
                sched_window: 64,
                l1d_ports: 2,
                mispredict_penalty: 5,
                fp_latency: 3,
                offchip_predictor_latency: 6,
                page_walk_latency: 40,
            },
            l1d: CacheConfig {
                sets: 64,
                ways: 8,
                latency: 4,
                mshrs: 10,
                prefetch_queue: 16,
            },
            l2: CacheConfig {
                sets: 1024,
                ways: 16,
                latency: 10,
                mshrs: 16,
                prefetch_queue: 32,
            },
            llc: CacheConfig {
                sets: llc_sets,
                ways: 11,
                latency: if cores == 1 { 36 } else { 56 },
                mshrs: 64 * cores,
                prefetch_queue: 32 * cores,
            },
            dtlb: TlbConfig {
                sets: 16,
                ways: 4,
                latency: 1,
            },
            stlb: TlbConfig {
                sets: 128,
                ways: 12,
                latency: 8,
            },
            dram: DramConfig {
                banks: 8,
                row_bytes: 8192,
                t_cas: 24,
                t_rcd: 24,
                t_rp: 24,
                bus_gbps: per_core_gbps * cores as f64,
                cpu_ghz: 3.8,
                read_queue: 48 * cores,
                write_queue: 48 * cores,
                ddrp_buffer: 32 * cores,
            },
            llc_repl: ReplKind::Lru,
            victim_cache_entries: 0,
        }
    }

    /// A scaled-down configuration for unit tests: tiny caches so that
    /// misses and evictions happen within a few hundred accesses.
    #[must_use]
    pub fn test_tiny(cores: usize) -> Self {
        let mut cfg = Self::cascade_lake(cores.max(1));
        cfg.l1d.sets = 8;
        cfg.l1d.ways = 2;
        cfg.l2.sets = 16;
        cfg.l2.ways = 4;
        cfg.llc.sets = 32;
        cfg.llc.ways = 4;
        cfg
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError("cores must be nonzero".into()));
        }
        self.l1d.validate("l1d")?;
        self.l2.validate("l2")?;
        self.llc.validate("llc")?;
        if self.core.rob == 0 || self.core.fetch_width == 0 || self.core.retire_width == 0 {
            return Err(ConfigError("core widths and ROB must be nonzero".into()));
        }
        if self.core.load_queue == 0 || self.core.store_queue == 0 {
            return Err(ConfigError("LQ/SQ must be nonzero".into()));
        }
        if self.dram.banks == 0 || self.dram.read_queue == 0 || self.dram.write_queue == 0 {
            return Err(ConfigError("dram queues/banks must be nonzero".into()));
        }
        if self.dram.bus_gbps <= 0.0 || self.dram.cpu_ghz <= 0.0 {
            return Err(ConfigError("dram rates must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_capacities() {
        let cfg = SystemConfig::cascade_lake(1);
        assert_eq!(cfg.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l2.capacity_bytes(), 1024 * 1024);
        // 1.375 MB per core.
        assert_eq!(cfg.llc.capacity_bytes(), 1_441_792);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn llc_scales_with_cores() {
        let cfg = SystemConfig::cascade_lake(4);
        assert_eq!(cfg.llc.capacity_bytes(), 4 * 1_441_792);
        assert_eq!(cfg.llc.latency, 56);
        // Multi-core: 3.2 GB/s per core, shared bus.
        assert!((cfg.dram.bus_gbps - 12.8).abs() < 1e-9);
    }

    #[test]
    fn burst_cycles_match_bandwidth() {
        let cfg = SystemConfig::cascade_lake(1);
        // 12.8 GB/s at 3.8 GHz: 64 B / 3.37 B/cyc ≈ 19 cycles.
        assert_eq!(cfg.dram.burst_cycles(), 19);
        let fast = SystemConfig::cascade_lake_with_bandwidth(1, 25.6);
        assert_eq!(fast.dram.burst_cycles(), 10);
        let slow = SystemConfig::cascade_lake_with_bandwidth(1, 1.6);
        assert_eq!(slow.dram.burst_cycles(), 152);
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut cfg = SystemConfig::cascade_lake(1);
        cfg.l1d.sets = 100;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::cascade_lake(1);
        cfg.l2.mshrs = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::cascade_lake(1);
        cfg.dram.bus_gbps = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn test_tiny_is_valid() {
        assert!(SystemConfig::test_tiny(1).validate().is_ok());
        assert!(SystemConfig::test_tiny(4).validate().is_ok());
    }
}
